#include "qdi/campaign/checkpoint.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "qdi/util/atomic_file.hpp"

namespace qdi::campaign {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
}

/// Bounds-checked little-endian reader over the record payload.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    if (bytes_.size() - pos_ < 4) truncated();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    if (bytes_.size() - pos_ < 8) truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  void raw(std::uint8_t* dst, std::size_t n) {
    if (bytes_.size() - pos_ < n) truncated();
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
  }

  std::vector<std::uint8_t> blob(std::size_t n) {
    if (n > bytes_.size() - pos_) truncated();
    std::vector<std::uint8_t> v(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  void expect_end() const {
    if (pos_ != bytes_.size())
      throw CheckpointError(CheckpointError::Kind::Corrupt,
                            "checkpoint: trailing bytes after payload");
  }

 private:
  [[noreturn]] static void truncated() {
    throw CheckpointError(CheckpointError::Kind::Truncated,
                          "checkpoint: payload shorter than declared");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void append_payload(std::vector<std::uint8_t>& p, const ShardCheckpoint& c) {
  put_u64(p, c.fingerprint);
  put_u64(p, c.shard);
  put_u64(p, c.lo);
  put_u64(p, c.hi);
  put_u64(p, c.next);
  for (std::uint32_t h : c.digest.h) put_u32(p, h);
  put_u64(p, c.digest.total_bytes);
  const std::size_t buffered = c.digest.buffered();
  put_u64(p, buffered);
  p.insert(p.end(), c.digest.buf.begin(),
           c.digest.buf.begin() + static_cast<std::ptrdiff_t>(buffered));
  put_u64(p, c.acc_state.size());
  p.insert(p.end(), c.acc_state.begin(), c.acc_state.end());
}

ShardCheckpoint decode_payload(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  ShardCheckpoint c;
  c.fingerprint = r.u64();
  c.shard = r.u64();
  c.lo = r.u64();
  c.hi = r.u64();
  c.next = r.u64();
  for (std::uint32_t& h : c.digest.h) h = r.u32();
  c.digest.total_bytes = r.u64();
  const std::uint64_t buffered = r.u64();
  // The digest buffer holds a partial block, so total_bytes % 64 must
  // agree with it — anything else is an internally inconsistent record.
  if (buffered >= 64 || buffered != c.digest.total_bytes % 64)
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "checkpoint: inconsistent digest buffer length");
  c.digest.buf.fill(0);
  r.raw(c.digest.buf.data(), static_cast<std::size_t>(buffered));
  const std::uint64_t acc_len = r.u64();
  c.acc_state = r.blob(static_cast<std::size_t>(acc_len));
  r.expect_end();
  return c;
}

}  // namespace

const char* CheckpointError::kind_name() const noexcept {
  switch (kind_) {
    case Kind::Truncated: return "truncated";
    case Kind::Corrupt: return "corrupt";
    case Kind::VersionMismatch: return "version-mismatch";
    case Kind::GeometryMismatch: return "geometry-mismatch";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_checkpoint(const ShardCheckpoint& c) {
  // Seal in place: header, payload, then the SHA-256 of the payload
  // bytes just written. Accumulator snapshots run to megabytes, so the
  // record is assembled in one reserved buffer instead of building the
  // payload separately and copying it in behind the header.
  std::vector<std::uint8_t> out;
  out.reserve(16 + 8 * 8 + 64 + c.acc_state.size() + 32);
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u64(out, 0);  // payload length, patched once the payload is in
  append_payload(out, c);
  const std::uint64_t payload_len = out.size() - 16;
  for (int i = 0; i < 8; ++i)
    out[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  const std::array<std::uint8_t, 32> seal =
      util::Sha256::of(std::span<const std::uint8_t>(out).subspan(16));
  out.insert(out.end(), seal.begin(), seal.end());
  return out;
}

ShardCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16)
    throw CheckpointError(CheckpointError::Kind::Truncated,
                          "checkpoint: header truncated (" +
                              std::to_string(bytes.size()) + " bytes)");
  Reader header(bytes.subspan(0, 16));
  const std::uint32_t magic = header.u32();
  if (magic != kCheckpointMagic)
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "checkpoint: bad magic (not a QDSK record)");
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError(
        CheckpointError::Kind::VersionMismatch,
        "checkpoint: version " + std::to_string(version) +
            " (this build speaks version " +
            std::to_string(kCheckpointVersion) + ")");
  const std::uint64_t payload_len = header.u64();
  if (bytes.size() - 16 < payload_len)
    throw CheckpointError(CheckpointError::Kind::Truncated,
                          "checkpoint: record ends before declared payload");
  if (bytes.size() - 16 - payload_len < 32)
    throw CheckpointError(CheckpointError::Kind::Truncated,
                          "checkpoint: record ends before payload digest");
  if (bytes.size() - 16 - payload_len != 32)
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "checkpoint: trailing bytes after payload digest");
  const std::span<const std::uint8_t> payload =
      bytes.subspan(16, static_cast<std::size_t>(payload_len));
  const std::array<std::uint8_t, 32> want = util::Sha256::of(payload);
  const std::span<const std::uint8_t> got = bytes.subspan(
      16 + static_cast<std::size_t>(payload_len), 32);
  if (!std::equal(want.begin(), want.end(), got.begin()))
    throw CheckpointError(CheckpointError::Kind::Corrupt,
                          "checkpoint: payload digest mismatch");
  return decode_payload(payload);
}

void validate_checkpoint_identity(const ShardCheckpoint& c,
                                  std::uint64_t fingerprint,
                                  std::uint64_t shard, std::uint64_t lo,
                                  std::uint64_t hi) {
  if (c.fingerprint != fingerprint)
    throw CheckpointError(CheckpointError::Kind::GeometryMismatch,
                          "checkpoint: fingerprint mismatch (belongs to a "
                          "different campaign configuration)");
  if (c.shard != shard || c.lo != lo || c.hi != hi)
    throw CheckpointError(
        CheckpointError::Kind::GeometryMismatch,
        "checkpoint: shard geometry mismatch (record is shard " +
            std::to_string(c.shard) + " [" + std::to_string(c.lo) + ", " +
            std::to_string(c.hi) + "), expected shard " +
            std::to_string(shard) + " [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "))");
  if (c.next < c.lo || c.next > c.hi)
    throw CheckpointError(CheckpointError::Kind::GeometryMismatch,
                          "checkpoint: committed index " +
                              std::to_string(c.next) +
                              " outside shard range");
}

std::string checkpoint_path(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

std::string checkpoint_prev_path(const std::string& dir, std::size_t shard) {
  return checkpoint_path(dir, shard) + ".prev";
}

void ensure_checkpoint_dir(const std::string& dir) {
  std::string part;
  part.reserve(dir.size());
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') {
      part.push_back(dir[i]);
      continue;
    }
    if (!part.empty() && part != ".") {
      if (::mkdir(part.c_str(), 0777) != 0 && errno != EEXIST)
        throw std::runtime_error("checkpoint: mkdir('" + part +
                                 "') failed: " + std::strerror(errno));
    }
    if (i < dir.size()) part.push_back('/');
  }
}

void commit_checkpoint(const std::string& dir, const ShardCheckpoint& c,
                       util::Durability durability) {
  ensure_checkpoint_dir(dir);
  const std::string path = checkpoint_path(dir, static_cast<std::size_t>(c.shard));
  const std::string prev = checkpoint_prev_path(dir, static_cast<std::size_t>(c.shard));
  // Rotate the current generation down before publishing the new one.
  // rename(2) is atomic, so at every instant at least one of {ckpt,
  // ckpt.prev} holds a complete record once the first commit lands.
  if (util::read_file_if_exists(path)) std::rename(path.c_str(), prev.c_str());
  util::atomic_write_file(path, encode_checkpoint(c), durability);
}

std::optional<RecoveredCheckpoint> recover_checkpoint(
    const std::string& dir, std::size_t shard, std::uint64_t fingerprint,
    std::uint64_t lo, std::uint64_t hi,
    const std::function<void(const ShardCheckpoint&)>& adopt,
    std::string* notes) {
  std::string log;
  const std::string candidates[2] = {checkpoint_path(dir, shard),
                                     checkpoint_prev_path(dir, shard)};
  for (const std::string& file : candidates) {
    const auto bytes = util::read_file_if_exists(file);
    if (!bytes) continue;
    try {
      ShardCheckpoint c = decode_checkpoint(*bytes);
      validate_checkpoint_identity(c, fingerprint, shard, lo, hi);
      if (adopt) adopt(c);
      if (notes) *notes = log;
      return RecoveredCheckpoint{std::move(c), file, log};
    } catch (const std::exception& e) {
      if (!log.empty()) log += "; ";
      log += "rejected " + file + ": " + e.what();
    }
  }
  if (notes) *notes = log;
  return std::nullopt;
}

}  // namespace qdi::campaign
