#include "attack_state.hpp"

#include <stdexcept>
#include <utility>

namespace qdi::campaign::detail {

std::vector<dpa::SelectionFn> resolve_bits(const Dpa& cfg,
                                           const TargetInstance& inst) {
  std::vector<dpa::SelectionFn> bits;
  if (cfg.bits.empty()) {
    bits = inst.selection_bits;
  } else {
    for (int b : cfg.bits) {
      if (b < 0 || static_cast<std::size_t>(b) >= inst.selection_bits.size())
        throw std::invalid_argument(
            "Campaign: Dpa bit index out of range for target '" + inst.name +
            "'");
      bits.push_back(inst.selection_bits[static_cast<std::size_t>(b)]);
    }
  }
  return bits;
}

AttackState::AttackState(const AttackConfig& attack, const TargetInstance& inst)
    : inst_(&inst), cfg_(attack) {
  if (const Dpa* cfg = std::get_if<Dpa>(&attack)) {
    dpa_cfg_ = *cfg;
    dpa_.emplace(resolve_bits(*cfg, inst), inst.num_guesses);
  } else if (const Cpa* cpa = std::get_if<Cpa>(&attack)) {
    cpa_cfg_ = *cpa;
    cpa_.emplace(inst.leakage, inst.num_guesses);
  } else {
    throw std::invalid_argument(
        "AttackState: an attack (Dpa or Cpa) must be configured");
  }
}

bool AttackState::mtd_enabled() const noexcept {
  return dpa_cfg_ ? dpa_cfg_->compute_mtd : cpa_cfg_->compute_mtd;
}

void AttackState::add_rows(const dpa::TraceSet& segment, std::size_t lo,
                           std::size_t hi) {
  if (lo >= hi) return;
  if (dpa_)
    dpa_->add_prefix(segment, lo, hi);
  else
    cpa_->add_prefix(segment, lo, hi);
}

std::size_t AttackState::rank_now() const {
  if (dpa_) {
    const dpa::KeyRecoveryResult r = dpa_->recover(dpa_cfg_->window);
    return r.rank_of(inst_->true_guess);
  }
  const dpa::CpaResult r =
      cpa_->finalize(cpa_cfg_->window_lo, cpa_cfg_->window_hi);
  return r.rank_of(inst_->true_guess);
}

bool AttackState::mtd_success_now() const {
  if (dpa_) {
    // The MTD scan uses the single-bit D-function (the paper's
    // historical attack), exactly like dpa::measurements_to_disclosure.
    const dpa::KeyRecoveryResult r = dpa_->recover_single(0, dpa_cfg_->window);
    return (r.best_guess == inst_->true_guess) && r.best_peak > 0.0;
  }
  const dpa::CpaResult r =
      cpa_->finalize(cpa_cfg_->window_lo, cpa_cfg_->window_hi);
  return (r.best_guess == inst_->true_guess) && r.best_rho > 0.0;
}

AttackOutcome AttackState::outcome() const {
  AttackOutcome out;
  if (dpa_) {
    const dpa::KeyRecoveryResult rec = dpa_->recover(dpa_cfg_->window);
    out.kind = "dpa";
    out.guess_scores = rec.guess_peak;
    out.best_guess = rec.best_guess;
    out.best_score = rec.best_peak;
    out.second_score = rec.second_peak;
    out.margin = rec.margin();
    out.true_key_rank = rec.rank_of(inst_->true_guess);
    const dpa::BiasResult known =
        dpa_->bias(inst_->true_guess, 0, dpa_cfg_->window);
    out.known_key_bias_peak = known.peak;
    out.known_key_bias_integral = known.integrated;
  } else {
    const dpa::CpaResult rec =
        cpa_->finalize(cpa_cfg_->window_lo, cpa_cfg_->window_hi);
    out.kind = "cpa";
    out.guess_scores = rec.correlation;
    out.best_guess = rec.best_guess;
    out.best_score = rec.best_rho;
    out.second_score = rec.second_rho;
    out.margin = rec.margin();
    out.true_key_rank = rec.rank_of(inst_->true_guess);
  }
  return out;
}

std::vector<std::uint8_t> AttackState::serialize() const {
  return dpa_ ? dpa_->serialize_state() : cpa_->serialize_state();
}

void AttackState::restore(std::span<const std::uint8_t> bytes) {
  if (dpa_)
    dpa_->restore_state(bytes);
  else
    cpa_->restore_state(bytes);
}

void AttackState::merge_serialized(std::span<const std::uint8_t> bytes) {
  AttackState twin(cfg_, *inst_);
  twin.restore(bytes);
  if (dpa_)
    dpa_->merge(*twin.dpa_);
  else
    cpa_->merge(*twin.cpa_);
}

void AttackState::merge(const AttackState& other) {
  if (dpa_)
    dpa_->merge(*other.dpa_);
  else
    cpa_->merge(*other.cpa_);
}

void AttackState::reset() noexcept {
  if (dpa_)
    dpa_->reset();
  else
    cpa_->reset();
}

void BlockMerge::ingest(std::size_t block, const dpa::TraceSet& segment) {
  std::unique_ptr<AttackState> st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      st = std::move(free_.back());
      free_.pop_back();
    }
  }
  if (!st) st = std::make_unique<AttackState>(*attack_, *inst_);
  st->reset();
  st->add_rows(segment, 0, segment.size());
  std::lock_guard<std::mutex> lock(mu_);
  partials_[block] = std::move(st);
}

void BlockMerge::merge_into(std::size_t block, AttackState& into) {
  std::unique_ptr<AttackState> st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = partials_.find(block);
    st = std::move(it->second);
    partials_.erase(it);
  }
  into.merge(*st);
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(st));
}

}  // namespace qdi::campaign::detail
