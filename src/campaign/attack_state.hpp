// Private campaign-internal header (not installed): the attack
// accumulator pair behind both the fused in-process analysis driver
// (campaign.cpp's StreamingAnalysis) and the sharded runtime's
// ShardRunner/Coordinator (shard.cpp). Keeping probe rules (true-key
// rank, the single-bit MTD success test, outcome emission) in ONE place
// is what guarantees a sharded campaign and a fused campaign cannot
// drift in how they read the same running sums.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "qdi/campaign/attack.hpp"
#include "qdi/campaign/target.hpp"
#include "qdi/dpa/online.hpp"

namespace qdi::campaign::detail {

/// Resolve the Dpa bit list against the target's selection functions.
/// Throws std::invalid_argument on an out-of-range index.
std::vector<dpa::SelectionFn> resolve_bits(const Dpa& cfg,
                                           const TargetInstance& inst);

/// One OnlineCpa or OnlineDpa accumulator plus the probe/emission rules
/// of the campaign layer. `inst` must outlive the state (it holds the
/// selection metadata the probes rank against).
class AttackState {
 public:
  /// `attack` must hold Dpa or Cpa (the caller validates monostate out).
  AttackState(const AttackConfig& attack, const TargetInstance& inst);

  bool is_dpa() const noexcept { return dpa_.has_value(); }
  std::size_t count() const noexcept {
    return dpa_ ? dpa_->count() : cpa_->count();
  }
  bool mtd_enabled() const noexcept;

  /// Feed rows [lo, hi) of a segment (accumulation is trace-ordered;
  /// see OnlineCpa/OnlineDpa).
  void add_rows(const dpa::TraceSet& segment, std::size_t lo, std::size_t hi);

  /// True-key rank at the current prefix (the rank-trajectory probe).
  std::size_t rank_now() const;

  /// The MTD success test at the current prefix: DPA uses the paper's
  /// single-bit D-function (selection bit 0), CPA the windowed best
  /// correlation — exactly dpa::measurements_to_disclosure's rule.
  bool mtd_success_now() const;

  /// Final attack emission from the current sums. Fills everything
  /// except `mtd` and `wall_ms` (the caller owns the MTD grid and the
  /// clock).
  AttackOutcome outcome() const;

  /// Accumulator snapshot / restore (the shard checkpoint payload).
  /// restore() forwards dpa::StateError on malformed or mismatched
  /// buffers and leaves the state untouched.
  std::vector<std::uint8_t> serialize() const;
  void restore(std::span<const std::uint8_t> bytes);

  /// Fold a serialized partial state into this one: restore into a twin
  /// accumulator (same config + instance), then merge. Throws
  /// dpa::StateError on a bad buffer without disturbing this state.
  void merge_serialized(std::span<const std::uint8_t> bytes);

  /// Fold another live accumulator into this one (the thread-sharded
  /// ingest path — no serialization round-trip per block).
  void merge(const AttackState& other);

  /// Drop accumulated traces, keep config/LUT/geometry — lets the
  /// block-fold ingest recycle one AttackState per in-flight block.
  void reset() noexcept;

 private:
  const TargetInstance* inst_;
  AttackConfig cfg_;  ///< kept for building merge twins
  std::optional<Dpa> dpa_cfg_;
  std::optional<Cpa> cpa_cfg_;
  std::optional<dpa::OnlineDpa> dpa_;
  std::optional<dpa::OnlineCpa> cpa_;
};

/// Per-block partial-accumulator pool for the thread-sharded ingest
/// (WorkerPool::acquire_sharded_range): worker threads fold one trace
/// block each into a recycled AttackState (ingest), and the in-order
/// commit folds that partial into the master accumulator and returns
/// it to the free list (merge_into). Because merge_into is called in
/// ascending block order — the pool's commit contract — the master's
/// final state depends only on the block partition, never on the
/// thread count or scheduling.
class BlockMerge {
 public:
  /// `attack`/`inst` must outlive this object (they parameterize the
  /// pooled accumulators).
  BlockMerge(const AttackConfig& attack, const TargetInstance& inst)
      : attack_(&attack), inst_(&inst) {}

  /// Worker side (any thread): fold all of `segment` into a pooled
  /// accumulator and file it under `block`.
  void ingest(std::size_t block, const dpa::TraceSet& segment);

  /// Commit side (ascending block order, serialized by the caller):
  /// merge block's partial into `into`, recycle the accumulator.
  void merge_into(std::size_t block, AttackState& into);

 private:
  const AttackConfig* attack_;
  const TargetInstance* inst_;
  std::mutex mu_;
  std::vector<std::unique_ptr<AttackState>> free_;
  std::unordered_map<std::size_t, std::unique_ptr<AttackState>> partials_;
};

}  // namespace qdi::campaign::detail
