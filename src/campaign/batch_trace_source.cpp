#include "qdi/campaign/batch_trace_source.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace qdi::campaign {

namespace {

std::shared_ptr<const sim::BatchNetlist> make_batch(
    const netlist::Netlist& nl, const SimTraceSourceOptions& opt) {
  // `precompiled` must have been compiled from this netlist with these
  // delays (the sweep/bench reuse contract); batch-compile validates the
  // structure either way.
  if (opt.precompiled) return sim::compile_batch(opt.precompiled);
  return sim::compile_batch(nl, opt.delays);
}

}  // namespace

BatchSimTraceSource::BatchSimTraceSource(const netlist::Netlist& nl,
                                         sim::EnvSpec env, StimulusFn stimulus,
                                         SimTraceSourceOptions opt)
    : nl_(&nl),
      spec_(std::move(env)),
      stimulus_(std::move(stimulus)),
      opt_(opt),
      batch_(make_batch(nl, opt_)),
      sim_(batch_),
      env_(sim_, spec_),
      acc_(opt_.power, batch_->compiled().cap_ff) {
  if (!stimulus_)
    throw std::invalid_argument("BatchSimTraceSource: stimulus is required");
}

BatchSimTraceSource::BatchSimTraceSource(const BatchSimTraceSource& other,
                                         WorkerCloneTag)
    : nl_(other.nl_),
      spec_(other.spec_),
      stimulus_(other.stimulus_),
      opt_(other.opt_),
      batch_(other.batch_),  // the batch-compiled form is shared read-only
      sim_(batch_),
      env_(sim_, spec_),
      acc_(opt_.power, batch_->compiled().cap_ff) {}

std::unique_ptr<TraceSource> BatchSimTraceSource::clone() const {
  return std::unique_ptr<TraceSource>(
      new BatchSimTraceSource(*this, WorkerCloneTag{}));
}

void BatchSimTraceSource::acquire_into(const TraceRequest& req,
                                       AcquiredTrace& out) {
  acquire_block(req.seed, req.index, 1, &out);
}

void BatchSimTraceSource::acquire_block(std::uint64_t seed, std::size_t first,
                                        std::size_t count,
                                        AcquiredTrace* out) {
  assert(count >= 1 && count <= sim::kBatchLanes);
  // Shared post-reset epoch: reset is lane-uniform, so it runs once per
  // worker and every block restores the snapshot — O(nets) per block of
  // up to 64 traces.
  if (epoch_.has_value()) {
    sim_.restore_epoch(*epoch_);
  } else {
    sim_.reset_state();
    env_.apply_reset();
    epoch_ = sim_.save_epoch();
  }

  // Per-lane randomness: the exact SimTraceSource draw order (stimulus,
  // then jitter, then noise at finish) from the per-index stream, so
  // lane l of this block IS trace first+l of the scalar engines.
  double t0[sim::kBatchLanes];
  const std::vector<int>* vals[sim::kBatchLanes];
  for (std::size_t l = 0; l < count; ++l) {
    rng_[l] = util::split_stream(seed, first + l);
    stimulus_(rng_[l], first + l, stim_[l]);
    const double jitter = opt_.start_jitter_ps > 0.0
                              ? rng_[l].uniform(0.0, opt_.start_jitter_ps)
                              : 0.0;
    t0[l] = env_.next_cycle_start(l) - jitter;
    vals[l] = &stim_[l].values;
  }
  const std::uint64_t mask = count == sim::kBatchLanes
                                 ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << count) - 1);

  acc_.begin_windows(t0, mask, spec_.period_ps);
  sim_.set_power_sink(&acc_);
  try {
    env_.send_into({vals, count}, cyc_);
  } catch (...) {
    sim_.set_power_sink(nullptr);
    throw;
  }
  sim_.set_power_sink(nullptr);

  for (std::size_t l = 0; l < count; ++l) {
    AcquiredTrace& o = out[l];
    acc_.finish_into_lane(l, o.trace, &rng_[l]);
    // Decoded output channels packed as "ciphertext" bytes, LSB-first,
    // exactly like SimTraceSource.
    o.ciphertext.assign((cyc_.num_outputs + 7) / 8, 0);
    for (std::size_t b = 0; b < cyc_.num_outputs; ++b)
      if (cyc_.outputs[l * cyc_.num_outputs + b] == 1)
        o.ciphertext[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
    o.plaintext.assign(stim_[l].plaintext.begin(), stim_[l].plaintext.end());
    o.transitions = cyc_.transitions[l];
    o.glitches = sim_.glitch_count(l);
    o.fault_class = -1;
  }
}

}  // namespace qdi::campaign
