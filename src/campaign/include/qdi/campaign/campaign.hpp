// Campaign — the one-stop attack-campaign API of this reproduction.
//
// The paper's whole methodology is a campaign: build a victim under a
// chosen design flow, acquire N power traces, run DPA/CPA, and read the
// dissymmetry criterion next to the attack outcome. The fluent builder
// wires those stages together over any CircuitTarget and any TraceSource:
//
//   auto r = Campaign()
//                .target(aes_byte_slice())
//                .key(0x4f)
//                .flow(core::FlowOptions{...})   // optional P&R stage
//                .traces(10'000)
//                .threads(8)                     // batched parallel acquisition
//                .attack(Dpa{})                  // or Cpa{}
//                .fused()                        // optional: O(1)-memory stream
//                .run();
//
// Results are deterministic in (target, key, seed) and bit-identical for
// any thread count (see trace_source.hpp for the contract). With fused()
// the acquired segments stream straight into the dpa::OnlineCpa /
// dpa::OnlineDpa accumulators and are discarded — same results as the
// materialized path, memory independent of the trace budget.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "qdi/campaign/attack.hpp"
#include "qdi/campaign/fault_campaign.hpp"
#include "qdi/campaign/shard.hpp"
#include "qdi/campaign/target.hpp"
#include "qdi/campaign/trace_source.hpp"
#include "qdi/core/criterion.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/xform/pass.hpp"

namespace qdi::campaign {

struct CampaignResult {
  std::string target;
  std::uint64_t key = 0;

  /// The victim netlist as attacked (after flow + prepare hooks and the
  /// countermeasure recipe, if any) — for follow-up inspection,
  /// reporting, or re-running with other settings.
  netlist::Netlist nl;

  /// Countermeasure stage, when a recipe ran: its name and the per-pass
  /// transform reports.
  std::string recipe;
  std::optional<xform::PipelineReport> xform;

  std::optional<core::FlowResult> flow;
  std::vector<core::ChannelCriterion> criteria;  ///< post-flow, post-prepare
  double max_da = 0.0;
  double mean_da = 0.0;

  /// The materialized trace set. Empty in fused mode — samples are
  /// folded into the attack accumulators chunk by chunk and discarded.
  dpa::TraceSet traces;
  AcquisitionStats acquisition;

  std::optional<AttackOutcome> attack;
  std::vector<RankPoint> rank_trajectory;

  /// Fault-resilience probe (Campaign::faults()): the full classified
  /// sweep over the as-attacked netlist, run through the same
  /// run_fault_campaign core as a standalone FaultCampaign.
  std::optional<FaultCampaignResult> faults;

  double total_wall_ms = 0.0;

  bool key_recovered() const noexcept {
    return attack && attack->true_key_rank == 0;
  }
};

/// One countermeasure variant of a sweep: the same campaign run against
/// the same victim family transformed by one xform::Recipe.
struct SweepVariant {
  std::string recipe;
  CampaignResult result;  ///< includes the per-pass xform reports
  /// Post-transform structural security metrics (the paper's section
  /// III/VI designer-side view): symmetry scan over every registered
  /// channel plus the capacitance-imbalance criterion.
  std::size_t channels = 0;
  std::size_t asymmetric_channels = 0;

  std::size_t mtd() const noexcept { return result.attack ? result.attack->mtd : 0; }
  double bias_peak() const noexcept {
    return result.attack ? result.attack->known_key_bias_peak : 0.0;
  }
  /// Fault-resilience counters of this variant (null without faults()).
  const FaultSummary* faults() const noexcept {
    return result.faults ? &result.faults->summary : nullptr;
  }
};

/// Outcome of Campaign::sweep — the paper's unprotected-vs-balanced
/// comparison as one object.
struct SweepResult {
  std::vector<SweepVariant> variants;  ///< recipe order

  const SweepVariant* find(std::string_view recipe) const noexcept;

  /// Comparison table: one row per variant (cells added, cap added,
  /// asymmetric channels, max dA, true-key rank, MTD, known-key bias,
  /// best attack score, and — when faults() ran — the
  /// deadlock/masked/exploitable counts).
  util::Table table() const;
};

class Campaign {
 public:
  using PrepareFn = std::function<void(netlist::Netlist&)>;
  using SourceFactory =
      std::function<std::unique_ptr<TraceSource>(const TargetInstance&,
                                                 const SimTraceSourceOptions&)>;

  Campaign& target(CircuitTarget t) { target_ = std::move(t); return *this; }
  Campaign& key(std::uint64_t k) { key_ = k; return *this; }

  /// Run the DPA-aware design flow (place, extract, criterion) before
  /// acquisition; net caps are back-annotated into the victim netlist.
  Campaign& flow(core::FlowOptions opt) { flow_ = std::move(opt); return *this; }

  /// Arbitrary netlist hook after the flow stage (capacitance injection,
  /// selective repair, ...). Multiple hooks run in registration order.
  Campaign& prepare(PrepareFn fn) {
    prepare_.push_back(std::move(fn));
    return *this;
  }

  /// Countermeasure stage: run the recipe's xform pipeline on the victim
  /// netlist after flow + prepare and before criterion evaluation and
  /// acquisition (the transformed netlist is what sim::compile() sees).
  /// The result records the recipe name and per-pass reports.
  Campaign& recipe(xform::Recipe r) {
    recipe_ = std::move(r);
    return *this;
  }

  Campaign& traces(std::size_t n) { num_traces_ = n; return *this; }
  Campaign& threads(unsigned n) { threads_ = n; return *this; }
  Campaign& seed(std::uint64_t s) { seed_ = s; return *this; }
  Campaign& power(power::PowerModelParams p) { opt_.power = p; return *this; }
  Campaign& delays(sim::DelayModel d) { opt_.delays = d; return *this; }
  Campaign& jitter(double start_jitter_ps) {
    opt_.start_jitter_ps = start_jitter_ps;
    return *this;
  }

  /// Simulation engine for the default trace source: the compiled SoA
  /// kernel (default), the construction-form reference interpreter, or
  /// the bit-parallel 64-lane batch kernel (Batch builds a
  /// BatchSimTraceSource — fault-free acquisition only, and the netlist
  /// must batch-compile; unsupported combinations throw with the
  /// offending cell/option named instead of silently falling back).
  /// Traces are bit-identical across all engines
  /// (tests/test_compiled_sim.cpp, tests/test_batch_sim.cpp).
  Campaign& engine(sim::EngineKind k) {
    opt_.engine = k;
    return *this;
  }

  /// Event-queue implementation of the compiled kernel: the time wheel
  /// (default) or the binary heap. Results are bit-identical; the heap
  /// is kept for differential testing and A/B benchmarking.
  Campaign& scheduler(sim::SchedulerKind k) {
    opt_.scheduler = k;
    return *this;
  }

  Campaign& attack(Dpa a) { attack_ = std::move(a); return *this; }
  Campaign& attack(Cpa a) { attack_ = std::move(a); return *this; }

  /// Fused acquire-and-attack: stream acquisition segments of at most
  /// `chunk_traces` straight into the streaming analysis accumulators
  /// (dpa::OnlineCpa / dpa::OnlineDpa) and discard the samples. Peak
  /// memory is O(chunk · samples + guesses · samples), independent of
  /// the trace budget — attacks on millions of traces without ever
  /// materializing a TraceSet. Attack results, MTD, and the rank
  /// trajectory are bit-identical to the materialized path (both run
  /// the same accumulators in the same order; asserted in
  /// tests/test_online_analysis.cpp). Requires attack(); the result's
  /// `traces` stays empty. A chunk of 0 is clamped to 1 — asking for
  /// fused mode must never silently fall back to materializing.
  Campaign& fused(std::size_t chunk_traces = 1024) {
    fused_chunk_ = chunk_traces == 0 ? 1 : chunk_traces;
    return *this;
  }

  /// Thread-sharded fused ingest: partition the trace stream into
  /// fixed-width blocks keyed by absolute trace index, fold each block
  /// into a pooled partial accumulator on whichever worker acquired it,
  /// and merge the partials into the master accumulator in ascending
  /// block order (WorkerPool::acquire_sharded_range +
  /// dpa::OnlineCpa/OnlineDpa::merge). Analysis now scales with the
  /// acquisition threads, and because the block partition is keyed by
  /// absolute trace index the outcome depends only on `block_traces`,
  /// never on the thread count or scheduling
  /// (tests/test_dpa_kernels.cpp). The block fold changes the FP
  /// reduction order relative to the serial fused stream (merge() adds
  /// per-block sums where the stream adds traces one by one), so
  /// results match run()'s serial fused path to ~1e-12 rather than
  /// bitwise — which is why this is opt-in rather than implied by
  /// threads(). Requires fused(); rank/MTD checkpoints are preserved
  /// exactly (checkpoint prefixes become additional block cuts, so
  /// every probe still fires at its exact trace count). 0 disables
  /// (the default, serial in-order feeding).
  Campaign& sharded_ingest(std::size_t block_traces = 256) {
    sharded_ingest_ = block_traces;
    return *this;
  }

  /// Fault-resilience probe: after acquisition, sweep the configured
  /// (site x kind x time) fault injections over the as-attacked netlist
  /// (post-flow, post-prepare, post-recipe) and classify every run as
  /// deadlock / masked / exploitable (see fault_campaign.hpp). The probe
  /// inherits the campaign's delay model, engine, and scheduler so it
  /// exercises exactly the simulated victim; results land in
  /// CampaignResult::faults and in the sweep comparison table.
  /// Incompatible with source(): the probe injects into the simulated
  /// netlist, which a custom source bypasses — validate() throws.
  Campaign& faults(FaultCampaignOptions opt = {}) {
    faults_ = std::move(opt);
    return *this;
  }

  /// Plug a different TraceSource (cache, replay, hardware bench). The
  /// default factory builds a SimTraceSource over the prepared netlist.
  Campaign& source(SourceFactory f) { source_ = std::move(f); return *this; }

  /// Record the true-key rank every `step` traces (0 = off). Uses the
  /// configured attack; adds analysis cost, not acquisition cost.
  Campaign& rank_trajectory(std::size_t step) {
    rank_step_ = step;
    return *this;
  }

  /// Validate the configuration and run all stages. Throws
  /// std::invalid_argument on an inconsistent configuration.
  CampaignResult run() const;

  /// Crash-safe sharded run (shard.hpp): partition the trace budget
  /// into `opt.shards` deterministic index ranges, run each shard's
  /// fused acquire-and-attack loop with durable checkpoints every
  /// `opt.checkpoint_interval` traces, and merge the shard states into
  /// one attack outcome. A killed run re-invoked with the same
  /// configuration resumes from the checkpoints in `opt.checkpoint_dir`
  /// and produces bit-identical results to an uninterrupted sharded run
  /// (tests/test_shard_runtime.cpp); a degraded run (a shard exhausted
  /// its attempts) merges every durable partial sum and reports honest
  /// per-shard coverage instead of throwing. Requires attack(),
  /// traces(n > 0), and a checkpoint_dir; incompatible with faults()
  /// and rank_trajectory() (the sharded trajectory is probed at shard
  /// boundaries instead). Throws std::invalid_argument otherwise.
  ShardedResult sharded(ShardedOptions opt) const;

  /// Run the same campaign once per countermeasure recipe and compare:
  /// each variant rebuilds the victim from the target's parameterized
  /// builder, runs flow + prepare, applies the recipe's pass pipeline,
  /// recompiles through the normal engine path, and runs the configured
  /// (fused) acquire-and-attack on a worker pool shared across all
  /// variants (per-thread simulators are rebound per variant, scratch
  /// persists). When an attack is configured the sweep always streams
  /// fused — a sweep's purpose is comparison, not trace retention — so
  /// peak memory is independent of both the trace budget and the number
  /// of recipes. Results per variant are bit-identical to a standalone
  /// .recipe(r).fused().run() campaign. Throws std::invalid_argument on
  /// an empty recipe list or an inconsistent configuration.
  SweepResult sweep(const std::vector<xform::Recipe>& recipes) const;

 private:
  struct PoolState;  ///< sweep-shared WorkerPool + live source (campaign.cpp)

  void validate(const TargetInstance& inst) const;
  CampaignResult run_stages(
      TargetInstance inst, const xform::Recipe* recipe, PoolState* shared,
      bool force_fused, std::chrono::steady_clock::time_point t_run) const;

  CircuitTarget target_;
  std::uint64_t key_ = 0;
  std::optional<core::FlowOptions> flow_;
  std::vector<PrepareFn> prepare_;
  std::optional<xform::Recipe> recipe_;
  std::size_t num_traces_ = 0;
  unsigned threads_ = 1;
  std::uint64_t seed_ = 1;
  SimTraceSourceOptions opt_{};
  AttackConfig attack_;
  std::optional<FaultCampaignOptions> faults_;
  SourceFactory source_;
  std::size_t rank_step_ = 0;
  std::size_t fused_chunk_ = 0;  ///< 0 = materialize a TraceSet (default)
  std::size_t sharded_ingest_ = 0;  ///< block width; 0 = serial fused feed
};

}  // namespace qdi::campaign
