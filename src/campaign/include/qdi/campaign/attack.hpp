// Attack configuration and outcome types of the campaign API, split out
// of campaign.hpp so every consumer of "which attack, what result" —
// the fluent Campaign builder, the fused streaming analysis, and the
// sharded ShardRunner/Coordinator runtime — shares one definition
// without pulling in the whole builder.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "qdi/dpa/dpa.hpp"

namespace qdi::campaign {

/// Difference-of-means DPA (eqs. 7-9 of the paper).
struct Dpa {
  /// Selection-bit indices into the target's selection_bits (empty = all:
  /// the multi-bit refinement). A single entry is the paper's historical
  /// single-bit D-function.
  std::vector<int> bits;
  dpa::SampleWindow window{};
  /// Also scan measurements-to-disclosure (uses the first selection bit).
  bool compute_mtd = false;
  std::size_t mtd_start = 50;
  std::size_t mtd_step = 50;
};

/// Correlation power analysis over the target's leakage model.
struct Cpa {
  std::size_t window_lo = 0;
  std::size_t window_hi = 0;
  /// Also scan measurements-to-disclosure (same stability rule as Dpa).
  bool compute_mtd = false;
  std::size_t mtd_start = 50;
  std::size_t mtd_step = 50;
};

/// The campaign's attack stage: none, DPA, or CPA.
using AttackConfig = std::variant<std::monostate, Dpa, Cpa>;

struct AttackOutcome {
  std::string kind;  ///< "dpa" or "cpa"
  std::vector<double> guess_scores;
  unsigned best_guess = 0;
  double best_score = 0.0;
  double second_score = 0.0;
  double margin = 0.0;           ///< best / nearest rival
  std::size_t true_key_rank = 0; ///< 0 = key recovered exactly
  std::size_t mtd = 0;           ///< measurements-to-disclosure (0 = n/a)
  /// Designer-side known-key assessment: DPA bias at the true guess.
  double known_key_bias_peak = 0.0;
  double known_key_bias_integral = 0.0;
  double wall_ms = 0.0;
};

/// True-key rank as a function of the trace-count prefix.
struct RankPoint {
  std::size_t traces = 0;
  std::size_t rank = 0;
};

}  // namespace qdi::campaign
