// TraceSource — the acquisition abstraction of the campaign API.
//
// An attack does not care where its power traces come from: the
// event-driven simulator of this reproduction, a cached acquisition on
// disk, or (in a lab) a real oscilloscope bench. A TraceSource answers
// exactly one question — "give me the power trace of acquisition i" —
// and the campaign layer handles batching, worker fan-out, and
// deterministic randomness on top of it.
//
// Determinism contract: every trace draws all of its randomness
// (stimulus, window jitter, measurement noise) from a private RNG stream
// keyed by (campaign seed, trace index), and SimTraceSource starts
// every trace from the post-reset state. Acquisition i is therefore
// bit-identical whatever thread acquired it and in whatever order — the
// property test_campaign asserts. The compiled and reference engines
// are additionally bit-identical to each other (test_compiled_sim).
//
// The hot path is allocation-free: workers acquire through
// acquire_into() into reused AcquiredTrace slots, the stimulus fills a
// reused buffer, the streaming power accumulator ping-pongs one sample
// buffer per worker, and a WorkerPool keeps the per-thread simulator
// clones (and their compiled-kernel epoch snapshots) alive across any
// number of acquire calls.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qdi/dpa/trace_set.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/compiled_simulator.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qdi::campaign {

/// One acquisition request: trace `index` of a campaign rooted at `seed`.
struct TraceRequest {
  std::uint64_t seed = 1;
  std::size_t index = 0;
};

/// One acquired trace plus its side-channel metadata.
struct AcquiredTrace {
  power::PowerTrace trace;
  std::vector<std::uint8_t> plaintext;
  std::vector<std::uint8_t> ciphertext;
  std::size_t transitions = 0;  ///< net transitions in the cycle
  std::size_t glitches = 0;     ///< cancelled events (0 on hazard-free QDI)
  /// Fault classification when the acquisition was a fault injection
  /// (campaign/fault_campaign.hpp); -1 for ordinary power acquisitions.
  int fault_class = -1;
};

/// Stimulus for one acquisition: the 1-of-N value per environment input
/// channel, plus the plaintext bytes recorded for the analysis side.
/// Randomness must come only from `rng` (the per-trace stream); `index`
/// allows deterministic exhaustive sweeps.
struct Stimulus {
  std::vector<int> values;
  std::vector<std::uint8_t> plaintext;
};

/// Fill-style stimulus callback: overwrite `out` completely (clear and
/// refill both vectors). The campaign layer reuses one Stimulus per
/// worker, so a well-behaved implementation allocates nothing once the
/// capacities have settled.
using StimulusFn =
    std::function<void(util::Rng& rng, std::size_t index, Stimulus& out)>;

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Acquire one trace into `out`, overwriting it completely (the
  /// campaign layer reuses one slot per request index, so implementations
  /// should clear-and-refill the buffers rather than reassign them —
  /// that is what keeps the hot loop allocation-free). Must be
  /// deterministic in `req` alone. A simple source can just do
  /// `out = ...` and forgo the buffer reuse.
  virtual void acquire_into(const TraceRequest& req, AcquiredTrace& out) = 0;

  /// Convenience value-returning form of acquire_into.
  AcquiredTrace acquire_one(const TraceRequest& req) {
    AcquiredTrace out;
    acquire_into(req, out);
    return out;
  }

  /// Natural block size of this source: how many consecutive trace
  /// indices one acquire_block() call acquires at once. 1 for scalar
  /// sources; sim::kBatchLanes for the bit-parallel batch engine. The
  /// WorkerPool hands out work in blocks of this width.
  virtual std::size_t batch_width() const { return 1; }

  /// Acquire traces [first, first + count) of campaign `seed` into
  /// out[0 .. count). `count` is at most batch_width() (the final block
  /// of a range may be partial). Per-trace results must be bit-identical
  /// to acquire_into on the same indices — block partitioning is a
  /// scheduling choice, never an observable one. The default forwards to
  /// acquire_into per index.
  virtual void acquire_block(std::uint64_t seed, std::size_t first,
                             std::size_t count, AcquiredTrace* out) {
    for (std::size_t i = 0; i < count; ++i)
      acquire_into({seed, first + i}, out[i]);
  }

  /// Independent copy for a worker thread.
  virtual std::unique_ptr<TraceSource> clone() const = 0;

  virtual std::string name() const = 0;
};

struct AcquisitionStats {
  double wall_ms = 0.0;
  double traces_per_s = 0.0;
  std::size_t transitions = 0;  ///< summed over all traces
  std::size_t glitches = 0;     ///< summed over all traces
  /// Filled by WorkerPool::acquire/acquire_batch only; the chunked
  /// streaming path leaves it empty (a per-trace vector would grow with
  /// the trace budget and break the fused campaign's bounded-memory
  /// contract).
  std::vector<std::size_t> per_trace_transitions;
  unsigned threads_used = 1;
};

/// Persistent acquisition worker set: `threads - 1` clones of a primary
/// source plus the per-segment scratch slots, created once and reused
/// across any number of acquire calls. This is what keeps per-thread
/// simulators (with their compiled netlist, epoch snapshot, and scratch
/// buffers) warm across batches instead of re-cloning per call — the
/// campaign layer owns one pool per run, benches own one per timing
/// loop. Worker threads are still (re)spawned per segment: per-trace
/// simulation dwarfs thread start-up at campaign batch sizes, and the
/// in-order barrier between segments is what makes the feed order (and
/// hence all accumulator results) independent of the thread count.
class WorkerPool {
 public:
  /// `src` must outlive the pool. `threads` counts `src` itself.
  WorkerPool(TraceSource& src, unsigned threads);

  unsigned threads() const noexcept {
    return static_cast<unsigned>(worker_clones_) + 1;
  }

  /// Point the pool at a different source, keeping the thread count and
  /// the per-slot scratch buffers (their capacity was paid for by the
  /// previous campaign). This is what lets a countermeasure sweep run
  /// every variant on one shared pool: each variant's netlist gets fresh
  /// per-thread clones, the allocation-heavy result slots persist.
  /// `src` must outlive the pool, the next rebind, or an unbind().
  void rebind(TraceSource& src);

  /// Drop the source pointer and the per-thread clones but keep the
  /// scratch slots. A SimTraceSource points into the netlist it was
  /// built over; when that netlist dies before the pool does (a sweep
  /// variant's instance is consumed by its CampaignResult), unbinding
  /// keeps the pool from holding dangling sources between variants.
  /// acquire/acquire_chunked are invalid until the next rebind().
  void unbind() noexcept;

  /// Batched acquisition into a fresh TraceSet, assembled in index
  /// order; bit-identical for any thread count (determinism contract).
  dpa::TraceSet acquire(std::size_t num_traces, std::uint64_t seed,
                        AcquisitionStats* stats = nullptr);

  /// Chunked streaming acquisition — the O(1)-memory feed of the fused
  /// campaign. Delivers traces [first, first + segment.size()) per
  /// consume() call from one reused segment buffer (cleared, capacity
  /// kept); consumers must copy anything they keep. Trace values are
  /// bit-identical to acquire() for any thread count and chunk size.
  void acquire_chunked(
      std::size_t num_traces, std::uint64_t seed, std::size_t chunk,
      const std::function<void(const dpa::TraceSet& segment,
                               std::size_t first)>& consume,
      AcquisitionStats* stats = nullptr);

  /// Ranged form of acquire_chunked: stream traces [first, first + count)
  /// of campaign `seed` — the feed of one campaign shard, whose range
  /// does not start at 0. Trace values are bit-identical to acquire()/
  /// acquire_chunked() on the same indices for any thread count, chunk
  /// size, or range partition (the determinism contract above).
  /// acquire_chunked(n, ...) is exactly acquire_chunked_range(0, n, ...).
  void acquire_chunked_range(
      std::size_t first_index, std::size_t count, std::uint64_t seed,
      std::size_t chunk,
      const std::function<void(const dpa::TraceSet& segment,
                               std::size_t first)>& consume,
      AcquisitionStats* stats = nullptr);

  /// Chunked acquisition delivering the raw AcquiredTrace records, in
  /// index order, without assembling a power-trace matrix — the feed of
  /// the fault campaign, whose records carry classifications and
  /// ciphertexts but no interesting power samples. Same determinism
  /// contract as acquire()/acquire_chunked(): consume(i, rec) sees
  /// record i bit-identical for any thread count or chunk size.
  void acquire_each(
      std::size_t num_traces, std::uint64_t seed, std::size_t chunk,
      const std::function<void(std::size_t index, const AcquiredTrace& rec)>&
          consume,
      AcquisitionStats* stats = nullptr);

  /// Consumer pair of acquire_sharded_range. `ingest` runs on worker
  /// threads — one call per block, unordered ACROSS blocks (any one
  /// worker's calls are serialized on its thread); it must only touch
  /// per-worker or per-block state. `commit` is serialized in strictly
  /// ascending block order (on whichever worker thread completed the
  /// frontier block) — this is where results are folded into shared
  /// state. Both see the block's assembled segment and the absolute
  /// index of its first trace; the segment is a recycled buffer, valid
  /// only for the duration of the call.
  struct ShardedIngest {
    std::function<void(unsigned worker, std::size_t block,
                       const dpa::TraceSet& segment, std::size_t first)>
        ingest;
    std::function<void(std::size_t block, const dpa::TraceSet& segment,
                       std::size_t first)>
        commit;
  };

  /// Thread-sharded streaming acquisition: traces [first_index,
  /// first_index + count) are partitioned into blocks cut at ABSOLUTE
  /// multiples of `block_traces` plus the caller's `extra_cuts`
  /// (absolute trace indices — analysis checkpoint positions land on
  /// block edges this way). Workers claim blocks in ascending order,
  /// acquire and `ingest` them concurrently, and `commit` replays every
  /// block in ascending block-index order. The partition depends only
  /// on (range, block_traces, extra_cuts) — never on the thread count
  /// or scheduling — so a consumer that folds per-block partials into
  /// shared state at commit time produces BIT-IDENTICAL results at any
  /// thread count, and a killed/resumed range re-derives the identical
  /// blocks. In-flight blocks are bounded (a few per worker), keeping
  /// memory O(threads · block) however far the fast workers run ahead.
  void acquire_sharded_range(std::size_t first_index, std::size_t count,
                             std::uint64_t seed, std::size_t block_traces,
                             const std::vector<std::size_t>& extra_cuts,
                             const ShardedIngest& consumer,
                             AcquisitionStats* stats = nullptr);

 private:
  void acquire_range(std::size_t lo, std::size_t hi, std::uint64_t seed);

  TraceSource* src_;
  std::size_t worker_clones_ = 0;  ///< clone count restored by rebind()
  std::vector<std::unique_ptr<TraceSource>> clones_;
  /// Reused result slots: slot buffers (samples, plaintext, ciphertext)
  /// retain capacity across segments and across acquire calls.
  std::vector<AcquiredTrace> scratch_;
  /// Reused chunk segment of acquire_chunked: clear() keeps the matrix
  /// and arena capacity, so repeated chunked acquisitions (the fused
  /// campaign's steady state, and every sweep step after the first) run
  /// without reallocating the segment.
  dpa::TraceSet chunk_buf_;
  /// acquire_sharded_range scratch, persistent across calls (the shard
  /// runtime issues one call per checkpoint window): per-worker
  /// AcquiredTrace slots plus a free list of recycled block segments.
  std::vector<std::vector<AcquiredTrace>> sharded_scratch_;
  std::vector<std::unique_ptr<dpa::TraceSet>> sharded_segments_;
};

/// One-shot batched acquisition over a transient WorkerPool. Kept as the
/// convenience entry point; callers that acquire repeatedly (benches,
/// multi-batch campaigns) should hold a WorkerPool instead.
dpa::TraceSet acquire_batch(TraceSource& src, std::size_t num_traces,
                            std::uint64_t seed, unsigned threads = 1,
                            AcquisitionStats* stats = nullptr);

/// One-shot chunked acquisition over a transient WorkerPool.
void acquire_chunked(
    TraceSource& src, std::size_t num_traces, std::uint64_t seed,
    unsigned threads, std::size_t chunk,
    const std::function<void(const dpa::TraceSet& segment, std::size_t first)>&
        consume,
    AcquisitionStats* stats = nullptr);

struct SimTraceSourceOptions {
  sim::DelayModel delays{};
  power::PowerModelParams power{};
  /// Acquisition-window start jitter in [0, start_jitter_ps): the
  /// attacker's missing-trigger problem on clockless circuits.
  double start_jitter_ps = 0.0;
  /// Execution engine. Compiled (default): the netlist is flattened once
  /// per source into a CompiledNetlist shared by all worker clones, power
  /// samples stream into the accumulator at commit time (no transition
  /// log), and after the first trace each epoch restores the post-reset
  /// snapshot instead of re-simulating reset. Reference: the
  /// construction-form interpreter with a post-hoc log walk. Batch: the
  /// 64-lane bit-parallel kernel — handled by BatchSimTraceSource, which
  /// Campaign::engine(Batch) builds; constructing a SimTraceSource with
  /// it throws. All engines produce bit-identical traces.
  sim::EngineKind engine = sim::EngineKind::Compiled;
  /// Reuse an existing compiled form instead of flattening the netlist
  /// again (benches and sweeps that build several sources over one
  /// victim). Must have been compiled from the SAME netlist with the
  /// SAME delay model — the source trusts it. Ignored by the reference
  /// engine.
  std::shared_ptr<const sim::CompiledNetlist> precompiled;
  /// Event-queue implementation of the compiled kernel (ignored by the
  /// reference engine). Wheel and Heap are bit-identical; the heap is
  /// kept for differential testing.
  sim::SchedulerKind scheduler = sim::SchedulerKind::Wheel;
};

/// TraceSource backed by the event-driven simulator and the four-phase
/// handshake environment — the reproduction's oscilloscope bench.
class SimTraceSource final : public TraceSource {
 public:
  /// `nl` is shared by all clones and must outlive them; it must not be
  /// mutated during acquisition (the compiled engine snapshots it).
  SimTraceSource(const netlist::Netlist& nl, sim::EnvSpec env,
                 StimulusFn stimulus, SimTraceSourceOptions opt = {});

  // Non-copyable/movable: env_ holds a pointer into the engine, so a
  // default copy would drive the source object's simulator. Use clone().
  SimTraceSource(const SimTraceSource&) = delete;
  SimTraceSource& operator=(const SimTraceSource&) = delete;

  void acquire_into(const TraceRequest& req, AcquiredTrace& out) override;
  std::unique_ptr<TraceSource> clone() const override;
  std::string name() const override {
    return opt_.engine == sim::EngineKind::Compiled ? "sim-compiled" : "sim";
  }

 private:
  struct WorkerCloneTag {};
  SimTraceSource(const SimTraceSource& other, WorkerCloneTag);

  const netlist::Netlist* nl_;
  sim::EnvSpec spec_;
  StimulusFn stimulus_;
  SimTraceSourceOptions opt_;
  /// Execution form shared read-only by all worker clones (compiled
  /// engine only).
  std::shared_ptr<const sim::CompiledNetlist> compiled_;
  std::unique_ptr<sim::SimEngine> sim_;
  /// Kernel view of sim_ for the epoch-snapshot fast path (the only
  /// engine-specific capability); non-null iff compiled engine.
  sim::CompiledSimulator* csim_ = nullptr;
  sim::FourPhaseEnv env_;
  /// Per-worker scratch reused across trace epochs — all of it
  /// capacity-retaining, so the steady-state loop allocates nothing.
  power::StreamingAccumulator acc_;
  Stimulus stim_;
  sim::FourPhaseEnv::CycleResult cyc_;
  std::optional<sim::CompiledSimulator::Epoch> epoch_;  ///< post-reset snapshot
};

}  // namespace qdi::campaign
