// TraceSource — the acquisition abstraction of the campaign API.
//
// An attack does not care where its power traces come from: the
// event-driven simulator of this reproduction, a cached acquisition on
// disk, or (in a lab) a real oscilloscope bench. A TraceSource answers
// exactly one question — "give me the power trace of acquisition i" —
// and the campaign layer handles batching, worker fan-out, and
// deterministic randomness on top of it.
//
// Determinism contract: every trace draws all of its randomness
// (stimulus, window jitter, measurement noise) from a private RNG stream
// keyed by (campaign seed, trace index), and SimTraceSource starts
// every trace from the post-reset state. Acquisition i is therefore
// bit-identical whatever thread acquired it and in whatever order — the
// property test_campaign asserts. The compiled and reference engines
// are additionally bit-identical to each other (test_compiled_sim).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qdi/dpa/trace_set.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/compiled_simulator.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/rng.hpp"

namespace qdi::campaign {

/// One acquisition request: trace `index` of a campaign rooted at `seed`.
struct TraceRequest {
  std::uint64_t seed = 1;
  std::size_t index = 0;
};

/// One acquired trace plus its side-channel metadata.
struct AcquiredTrace {
  power::PowerTrace trace;
  std::vector<std::uint8_t> plaintext;
  std::vector<std::uint8_t> ciphertext;
  std::size_t transitions = 0;  ///< net transitions in the cycle
  std::size_t glitches = 0;     ///< cancelled events (0 on hazard-free QDI)
};

/// Stimulus for one acquisition: the 1-of-N value per environment input
/// channel, plus the plaintext bytes recorded for the analysis side.
/// Randomness must come only from `rng` (the per-trace stream); `index`
/// allows deterministic exhaustive sweeps.
struct Stimulus {
  std::vector<int> values;
  std::vector<std::uint8_t> plaintext;
};
using StimulusFn = std::function<Stimulus(util::Rng& rng, std::size_t index)>;

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Acquire one trace. Must be deterministic in `req` alone.
  virtual AcquiredTrace acquire_one(const TraceRequest& req) = 0;

  /// Independent copy for a worker thread.
  virtual std::unique_ptr<TraceSource> clone() const = 0;

  virtual std::string name() const = 0;
};

struct AcquisitionStats {
  double wall_ms = 0.0;
  double traces_per_s = 0.0;
  std::size_t transitions = 0;  ///< summed over all traces
  std::size_t glitches = 0;     ///< summed over all traces
  /// Filled by acquire_batch only; acquire_chunked leaves it empty (a
  /// per-trace vector would grow with the trace budget and break the
  /// fused campaign's bounded-memory contract).
  std::vector<std::size_t> per_trace_transitions;
  unsigned threads_used = 1;
};

/// Batched acquisition: `num_traces` requests fanned out over `threads`
/// clones of `src` (thread 0 uses `src` itself). Results are assembled in
/// index order into the TraceSet's contiguous SoA matrix; with the
/// determinism contract above the returned TraceSet is bit-identical for
/// any thread count.
dpa::TraceSet acquire_batch(TraceSource& src, std::size_t num_traces,
                            std::uint64_t seed, unsigned threads = 1,
                            AcquisitionStats* stats = nullptr);

/// Chunked streaming acquisition — the O(1)-memory feed of the fused
/// campaign. Acquires `num_traces` in index order and delivers them in
/// segments of at most `chunk` traces: consume(segment, first_index)
/// sees traces [first_index, first_index + segment.size()). The segment
/// TraceSet is one reused buffer (cleared, capacity kept), so peak
/// memory is O(chunk · samples) regardless of num_traces; consumers must
/// copy anything they keep. Trace values are bit-identical to
/// acquire_batch for any thread count and any chunk size.
void acquire_chunked(
    TraceSource& src, std::size_t num_traces, std::uint64_t seed,
    unsigned threads, std::size_t chunk,
    const std::function<void(const dpa::TraceSet& segment, std::size_t first)>&
        consume,
    AcquisitionStats* stats = nullptr);

struct SimTraceSourceOptions {
  sim::DelayModel delays{};
  power::PowerModelParams power{};
  /// Acquisition-window start jitter in [0, start_jitter_ps): the
  /// attacker's missing-trigger problem on clockless circuits.
  double start_jitter_ps = 0.0;
  /// Execution engine. Compiled (default): the netlist is flattened once
  /// per source into a CompiledNetlist shared by all worker clones, power
  /// samples stream into the accumulator at commit time (no transition
  /// log), and after the first trace each epoch restores the post-reset
  /// snapshot instead of re-simulating reset. Reference: the
  /// construction-form interpreter with a post-hoc log walk. Both
  /// produce bit-identical traces.
  sim::EngineKind engine = sim::EngineKind::Compiled;
};

/// TraceSource backed by the event-driven simulator and the four-phase
/// handshake environment — the reproduction's oscilloscope bench.
class SimTraceSource final : public TraceSource {
 public:
  /// `nl` is shared by all clones and must outlive them; it must not be
  /// mutated during acquisition (the compiled engine snapshots it).
  SimTraceSource(const netlist::Netlist& nl, sim::EnvSpec env,
                 StimulusFn stimulus, SimTraceSourceOptions opt = {});

  // Non-copyable/movable: env_ holds a pointer into the engine, so a
  // default copy would drive the source object's simulator. Use clone().
  SimTraceSource(const SimTraceSource&) = delete;
  SimTraceSource& operator=(const SimTraceSource&) = delete;

  AcquiredTrace acquire_one(const TraceRequest& req) override;
  std::unique_ptr<TraceSource> clone() const override;
  std::string name() const override {
    return opt_.engine == sim::EngineKind::Compiled ? "sim-compiled" : "sim";
  }

 private:
  struct WorkerCloneTag {};
  SimTraceSource(const SimTraceSource& other, WorkerCloneTag);

  const netlist::Netlist* nl_;
  sim::EnvSpec spec_;
  StimulusFn stimulus_;
  SimTraceSourceOptions opt_;
  /// Execution form shared read-only by all worker clones (compiled
  /// engine only).
  std::shared_ptr<const sim::CompiledNetlist> compiled_;
  std::unique_ptr<sim::SimEngine> sim_;
  /// Kernel view of sim_ for the epoch-snapshot fast path (the only
  /// engine-specific capability); non-null iff compiled engine.
  sim::CompiledSimulator* csim_ = nullptr;
  sim::FourPhaseEnv env_;
  /// Per-worker scratch reused across trace epochs.
  power::StreamingAccumulator acc_;
  std::optional<sim::CompiledSimulator::Epoch> epoch_;  ///< post-reset snapshot
};

}  // namespace qdi::campaign
