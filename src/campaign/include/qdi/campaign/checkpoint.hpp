// Durable shard checkpoints — the crash-safety substrate of the sharded
// campaign runtime.
//
// One checkpoint file holds everything a killed shard needs to resume
// bit-identically: the serialized OnlineCpa/OnlineDpa running sums, the
// first unacquired trace index, and the mid-state of the shard's
// running SHA-256 trace-stream digest, all under a config fingerprint
// that ties the record to one (target, key, seed, budget, geometry)
// campaign. The record is versioned, length-prefixed, and sealed by the
// SHA-256 of its payload:
//
//   u32 magic 'QDSK' | u32 version | u64 payload_len |
//   payload[payload_len] | sha256(payload)[32]
//
// Files are only ever published through util::atomic_write_file with a
// two-generation rotation (`shard-K.ckpt` + `shard-K.ckpt.prev`), so a
// crash at any byte boundary leaves a previous complete record on disk.
// The loader rejects everything else with a named CheckpointError —
// truncated, digest-corrupt, version-mismatched, or belonging to a
// different campaign geometry — and recover_checkpoint() walks the
// generations newest-first, adopting the first record that validates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "qdi/util/atomic_file.hpp"
#include "qdi/util/sha256.hpp"

namespace qdi::campaign {

/// Named checkpoint rejection. The kind is what the coordinator's
/// recovery report surfaces: a degraded run says WHY a shard restarted.
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind {
    Truncated,        ///< file ends before the declared record length
    Corrupt,          ///< bad magic, digest mismatch, or trailing bytes
    VersionMismatch,  ///< record version this build does not speak
    GeometryMismatch, ///< fingerprint / shard / range / index out of spec
  };

  CheckpointError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }
  const char* kind_name() const noexcept;

 private:
  Kind kind_;
};

inline constexpr std::uint32_t kCheckpointMagic = 0x4b534451u;  // "QDSK"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// The decoded checkpoint payload.
struct ShardCheckpoint {
  std::uint64_t fingerprint = 0;  ///< campaign config identity
  std::uint64_t shard = 0;
  std::uint64_t lo = 0;   ///< shard trace range [lo, hi)
  std::uint64_t hi = 0;
  std::uint64_t next = 0; ///< first unacquired global trace index
  util::Sha256::State digest{};  ///< stream digest state at `next`
  std::vector<std::uint8_t> acc_state;  ///< OnlineCpa/OnlineDpa snapshot
};

std::vector<std::uint8_t> encode_checkpoint(const ShardCheckpoint& c);

/// Decode + structural validation (magic, version, length, payload
/// digest, internal consistency). Throws CheckpointError; never returns
/// a partially decoded record.
ShardCheckpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Reject a structurally valid record that belongs to a different
/// campaign: wrong fingerprint, shard id, range, or a committed index
/// outside [lo, hi]. Throws CheckpointError(GeometryMismatch).
void validate_checkpoint_identity(const ShardCheckpoint& c,
                                  std::uint64_t fingerprint,
                                  std::uint64_t shard, std::uint64_t lo,
                                  std::uint64_t hi);

/// Canonical file names under the checkpoint directory.
std::string checkpoint_path(const std::string& dir, std::size_t shard);
std::string checkpoint_prev_path(const std::string& dir, std::size_t shard);

/// mkdir -p for the checkpoint directory (POSIX, EEXIST is success).
/// commit_checkpoint calls this itself; the coordinator also calls it
/// up front so a run fails fast on an uncreatable directory instead of
/// at the first commit.
void ensure_checkpoint_dir(const std::string& dir);

/// Durably publish `c` as shard `c.shard`'s newest checkpoint. The
/// previous generation survives as `.prev` (the rename rotation is
/// itself crash-safe: a kill between the two renames leaves `.prev`
/// holding the last good record, which recovery adopts). `durability`
/// picks whether the write also fsyncs (survives power loss) or only
/// renames atomically (survives any process kill; see
/// util::Durability).
void commit_checkpoint(const std::string& dir, const ShardCheckpoint& c,
                       util::Durability durability = util::Durability::Fsync);

/// Outcome of a recovery scan over one shard's checkpoint generations.
struct RecoveredCheckpoint {
  ShardCheckpoint ckpt;
  std::string file;   ///< which generation was adopted
  std::string notes;  ///< named rejections encountered on the way (if any)
};

/// Scan `shard`'s generations newest-first and adopt the first record
/// that (a) decodes + validates against the expected identity and
/// (b) passes the caller's `adopt` hook (which should restore the
/// accumulator/digest state and throw — e.g. dpa::StateError — to veto).
/// Returns nullopt when no generation survives; `notes` (also filled on
/// success) names every rejected generation and why, so the caller's
/// report can say "fell back to .prev: digest mismatch on .ckpt".
std::optional<RecoveredCheckpoint> recover_checkpoint(
    const std::string& dir, std::size_t shard, std::uint64_t fingerprint,
    std::uint64_t lo, std::uint64_t hi,
    const std::function<void(const ShardCheckpoint&)>& adopt,
    std::string* notes = nullptr);

}  // namespace qdi::campaign
