// CircuitTarget — the victim-circuit registry of the campaign API.
//
// A target bundles everything a campaign needs to attack one circuit
// family: how to build the netlist, how to stimulate it for one
// acquisition under a fixed key, the guess space and selection functions
// of the paper's D-function analysis, and a CPA leakage model. The
// registry replaces the per-circuit acquire_<circuit>() free functions —
// any new victim plugs in as one CircuitTarget and every attack, flow
// variant, and bench works on it unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "qdi/campaign/trace_source.hpp"
#include "qdi/dpa/cpa.hpp"
#include "qdi/dpa/dfa.hpp"
#include "qdi/dpa/selection.hpp"
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/xform/pass.hpp"

namespace qdi::campaign {

/// A built victim: netlist + environment + key-bound stimulus + the
/// analysis-side metadata of section IV.
struct TargetInstance {
  netlist::Netlist nl;
  sim::EnvSpec env;
  StimulusFn stimulus;  ///< bound to the campaign key
  /// Size of the guess space (0 = the target has no keyed intermediate
  /// and cannot be attacked — e.g. plain pipeline circuits).
  unsigned num_guesses = 0;
  /// The guess index that corresponds to the true key (what rank 0 means).
  unsigned true_guess = 0;
  /// Per-bit selection functions D for (multi-bit) difference-of-means DPA.
  std::vector<dpa::SelectionFn> selection_bits;
  /// Hamming-weight style model for CPA (may be empty).
  dpa::LeakageModel leakage;
  /// Software reference: the decoded output-channel values a fault-free
  /// run must produce for the given plaintext record (key bound at build
  /// time, like `stimulus`). Empty for targets without a closed-form
  /// reference. Drives the golden-path equivalence test and the fault
  /// campaign's exploitability check.
  std::function<std::vector<int>(const std::vector<std::uint8_t>&)> golden;
  /// DFA consistency model over (input, golden, faulty) output words
  /// (empty = target has no DFA interpretation).
  dpa::DfaModel dfa;
  /// False for flow/criterion-only targets (reduced builds without a
  /// drivable environment, e.g. aes_core without its key path).
  bool simulatable = true;
  std::string name;
};

class CircuitTarget {
 public:
  using BuildFn = std::function<TargetInstance(std::uint64_t key)>;

  CircuitTarget() = default;
  CircuitTarget(std::string name, BuildFn build)
      : name_(std::move(name)), build_(std::move(build)) {}

  bool valid() const noexcept { return static_cast<bool>(build_); }
  const std::string& name() const noexcept { return name_; }
  TargetInstance build(std::uint64_t key) const;

 private:
  std::string name_;
  BuildFn build_;
};

// ---- built-in targets ------------------------------------------------------

/// First-round AES byte slice q = SBOX(p ^ k): random plaintext byte,
/// 256 guesses, 8 S-Box selection bits, HW CPA model (section IV).
CircuitTarget aes_byte_slice(double period_ps = 20000.0);

/// DES S-box slice q = SBOX<box>(p6 ^ k6): random 6-bit input, 64 guesses,
/// 4 selection bits (the paper's historical D(C1, P6, K0)).
CircuitTarget des_sbox_slice(int box = 0, double period_ps = 20000.0);

/// Unprotected synchronous-style DES S-box slice (same function and
/// channel interface as des_sbox_slice, single-rail SOP data path with
/// faked input-validity completion): the fault-attack counterexample —
/// injections yield wrong-but-valid ciphertexts instead of deadlocks.
CircuitTarget des_sbox_sync(int box = 0, double period_ps = 20000.0);

/// Fig. 4 dual-rail XOR stage: random bit pair; power-signature studies
/// (not attackable — no keyed intermediate).
CircuitTarget xor_stage(double period_ps = 4000.0);

/// Full gate-level DES Feistel round under a fixed 48-bit subkey `key`:
/// random R half, SBOX1 analysis (64 guesses) as in the companion study.
CircuitTarget des_round(double period_ps = 30000.0);

/// 1-of-N encoding templates (section II): the same two bits carried as
/// two dual-rail channels vs one 1-of-4 channel through buffer stages.
/// Stimulus sweeps the four codewords exhaustively (index mod 4).
CircuitTarget dual_rail_pair(double period_ps = 2000.0);
CircuitTarget one_of_four(double period_ps = 2000.0);

/// The fig. 8 QDI AES crypto-processor, end-to-end: each trace is one
/// four-phase handshake of the full ~25k-cell core (random data word +
/// fixed key word through AES_KEY, BYTESUB, DECALHOR, MIXCOLUMN),
/// golden-checked against the software AES reference. First-round CPA
/// targets sbox(data0 ^ subkey0) with the derived subkey byte as the
/// guess. Reduced builds (no key path or no interface) remain
/// flow/criterion-only.
CircuitTarget aes_core(gates::AesCoreParams params = {});

/// Wrap an already-built instance so repeated campaigns over one victim
/// family pay netlist construction once (each run still gets its own
/// copy to mutate through flow/prepare stages). The key is fixed to
/// whatever the instance was built with.
CircuitTarget prebuilt(TargetInstance inst);

/// Wrap a target so every build is post-processed by the recipe's pass
/// pipeline: the countermeasure variant as a first-class registry
/// entry, named "<base>+<recipe>". The transformed netlist keeps the
/// base target's channel metadata (environment, stimulus, analysis
/// side) and compiles through the existing sim::compile() path
/// unchanged. Builds are memoized per key (build + pipeline are
/// deterministic), so repeated campaigns over one wrapped target pay
/// the transform once. Prefer Campaign::recipe()/sweep() when the
/// campaign also runs a flow stage — this wrapper transforms at build
/// time, before any flow.
CircuitTarget transformed(CircuitTarget base, xform::Recipe recipe);

// ---- registry --------------------------------------------------------------

/// Names of every built-in target, for tooling and --target flags.
std::vector<std::string> list_targets();

/// Look a built-in target up by name (default parameters). Throws
/// std::invalid_argument for unknown names.
CircuitTarget find_target(const std::string& name);

}  // namespace qdi::campaign
