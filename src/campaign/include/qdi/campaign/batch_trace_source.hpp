// BatchSimTraceSource — acquisition over the 64-lane batch kernel.
//
// One four-phase cycle of the BatchSimulator acquires up to 64 traces:
// each lane runs its own stimulus from the shared post-reset epoch, and
// the BatchAccumulator bins each lane's power straight into that lane's
// sample row. Per-trace results — power samples, ciphertext, transition
// and glitch counts — are bit-identical to SimTraceSource over the
// scalar engines (same canonical event order, same RNG streams, same
// floating-point accumulation order per lane; asserted over every
// simulatable registry target in tests/test_batch_sim.cpp).
//
// Lanes are fully independent, so results are also invariant to how the
// campaign partitions trace indices into blocks: a 1-lane block, the
// partial final block of a campaign, and a full 64-lane block all
// reproduce the same per-index traces.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "qdi/campaign/trace_source.hpp"
#include "qdi/power/batch_synth.hpp"
#include "qdi/sim/batch_simulator.hpp"

namespace qdi::campaign {

/// TraceSource running sim::BatchSimulator, 64 trace lanes per block.
/// Construction throws std::invalid_argument when the netlist cannot be
/// batch-compiled (non-levelizable combinational cone — see
/// BatchNetlist) and std::invalid_argument via BatchFourPhaseEnv when
/// the environment is not strict. Options: `engine` must be Batch;
/// `scheduler` is ignored (the batch kernel has its own merged queue);
/// `precompiled` is reused when provided.
class BatchSimTraceSource final : public TraceSource {
 public:
  BatchSimTraceSource(const netlist::Netlist& nl, sim::EnvSpec env,
                      StimulusFn stimulus, SimTraceSourceOptions opt = {});

  BatchSimTraceSource(const BatchSimTraceSource&) = delete;
  BatchSimTraceSource& operator=(const BatchSimTraceSource&) = delete;

  void acquire_into(const TraceRequest& req, AcquiredTrace& out) override;
  std::size_t batch_width() const override { return sim::kBatchLanes; }
  void acquire_block(std::uint64_t seed, std::size_t first, std::size_t count,
                     AcquiredTrace* out) override;
  std::unique_ptr<TraceSource> clone() const override;
  std::string name() const override { return "batch-sim"; }

  /// Lane-occupancy of the merged commits this worker ran (64 = perfect
  /// lockstep). Benchmark context; see BatchSimulator.
  double mean_lane_occupancy() const noexcept {
    return sim_.mean_lane_occupancy();
  }

 private:
  struct WorkerCloneTag {};
  BatchSimTraceSource(const BatchSimTraceSource& other, WorkerCloneTag);

  const netlist::Netlist* nl_;
  sim::EnvSpec spec_;
  StimulusFn stimulus_;
  SimTraceSourceOptions opt_;
  /// Shared read-only by all worker clones.
  std::shared_ptr<const sim::BatchNetlist> batch_;
  sim::BatchSimulator sim_;
  sim::BatchFourPhaseEnv env_;
  power::BatchAccumulator acc_;
  /// Per-worker scratch, capacity-retaining across blocks.
  std::array<Stimulus, sim::kBatchLanes> stim_;
  std::array<util::Rng, sim::kBatchLanes> rng_;
  sim::BatchFourPhaseEnv::BatchCycleResult cyc_;
  std::optional<sim::BatchSimulator::Epoch> epoch_;  ///< post-reset snapshot
};

}  // namespace qdi::campaign
