// Crash-safe sharded campaign runtime.
//
// A sharded campaign partitions the trace budget [0, N) into contiguous
// per-shard index ranges and runs the fused acquire-and-attack loop of
// each shard independently over the persistent WorkerPool machinery.
// Because every trace's randomness is keyed by (seed, trace index) —
// the determinism contract of trace_source.hpp — the partition is a
// scheduling choice, never an observable one: shard k acquires exactly
// the traces a monolithic run would have fed at indices [lo_k, hi_k).
//
// Crash safety comes from durable checkpoints (checkpoint.hpp): each
// shard commits its accumulator state, committed trace index, and
// running stream digest every `checkpoint_interval` traces, atomically.
// A killed run resumes from the last committed boundary and redoes only
// the open window — re-acquiring the same deterministic traces in the
// same order — so the resumed accumulation is bit-identical to an
// uninterrupted run of the same sharded configuration (asserted in
// tests/test_shard_runtime.cpp).
//
// The Coordinator dispatches shards over a bounded worker set,
// re-dispatches failed shards with exponential backoff, watches
// per-shard progress counters for stalls (a wedged shard is cancelled
// and re-dispatched, its report carrying the PR 6 handshake-phase
// diagnostics when the stall named one), and finally merges the
// surviving shard states in shard order into one attack outcome. A
// degraded run — some shard exhausted its attempts — still merges every
// durable partial sum and reports per-shard coverage honestly instead
// of throwing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "qdi/campaign/attack.hpp"
#include "qdi/campaign/checkpoint.hpp"
#include "qdi/campaign/target.hpp"
#include "qdi/campaign/trace_source.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/util/table.hpp"

namespace qdi::campaign {

/// A shard attempt aborted because progress stalled. Carries the PR 6
/// four-phase diagnostics when the stall localized to a handshake
/// (fault-injection harnesses throw it with the stalled phase and
/// channel); the coordinator's watchdog throws it with phase None.
class ShardStall : public std::runtime_error {
 public:
  explicit ShardStall(const std::string& what,
                      sim::HandshakePhase phase = sim::HandshakePhase::None,
                      std::string channel = {})
      : std::runtime_error(what), phase_(phase), channel_(std::move(channel)) {}

  sim::HandshakePhase phase() const noexcept { return phase_; }
  const std::string& channel() const noexcept { return channel_; }

 private:
  sim::HandshakePhase phase_;
  std::string channel_;
};

struct ShardedOptions {
  std::size_t shards = 4;
  /// Traces between durable commits. Window boundaries sit at
  /// lo + k·interval — deterministic, so a resumed shard redoes exactly
  /// the open window. The default is sized so that sealing and
  /// publishing a multi-megabyte accumulator snapshot (a des_round DPA
  /// state is ~6 MB, ~20 ms to snapshot + seal + publish) stays a
  /// couple percent of the acquisition work it protects; shrink it
  /// only if losing more than a few seconds of re-acquisition on a
  /// crash actually hurts.
  std::size_t checkpoint_interval = 8192;
  /// Directory for the per-shard checkpoint files (created if missing).
  /// Required: a sharded campaign without durable state is just a
  /// slower fused() run.
  std::string checkpoint_dir;
  /// Acquisition chunk within a window (cancel/progress granularity;
  /// never observable in results).
  std::size_t chunk_traces = 256;
  /// Thread-sharded window ingest: when > 0, each checkpoint window's
  /// traces are partitioned into blocks of this width (cut at absolute
  /// multiples of the trace index), folded into pooled partial
  /// accumulators on the acquiring workers, and merged into the shard
  /// accumulator in ascending block order
  /// (WorkerPool::acquire_sharded_range). The stream digest is fed
  /// trace by trace at commit time, so it stays bit-identical to the
  /// serial path; the accumulator's FP reduction order changes (merge()
  /// adds block sums where the serial feed adds traces, ~1e-12 apart),
  /// which is why Campaign::sharded() extends the configuration
  /// fingerprint when this is enabled — a block-fold run never adopts a
  /// serial run's checkpoints or vice versa. Results are independent of
  /// the thread count either way. 0 = serial in-order feeding (the
  /// default).
  std::size_t ingest_block_traces = 0;
  /// Shards in flight at once. Each running shard drives its own
  /// WorkerPool of `threads` workers.
  unsigned concurrency = 1;
  /// Dispatch attempts per shard (>= 1) before the coordinator gives up
  /// and falls back to the shard's last durable checkpoint.
  unsigned max_attempts = 3;
  /// Exponential re-dispatch backoff: attempt k sleeps
  /// backoff_ms · 2^(k-2) first (0 = immediate retry).
  unsigned backoff_ms = 10;
  /// Stall watchdog: a running shard whose progress counter does not
  /// advance for this long is cancelled (it aborts with ShardStall at
  /// the next chunk boundary) and re-dispatched. 0 = watchdog off.
  unsigned stall_timeout_ms = 0;
  unsigned watchdog_poll_ms = 5;
  /// Commit durability. Every commit is always SHA-sealed and
  /// published by atomic rename, so a killed process — the crash model
  /// of the resume tests — can neither lose nor corrupt a committed
  /// window: the record is complete-or-absent and a torn write fails
  /// the seal. The default skips the two fsyncs per commit on top of
  /// that; set true when checkpoints must also survive power loss or a
  /// kernel crash, and budget the fsync latency into
  /// checkpoint_interval.
  bool fsync_commits = false;
  /// Fault-injection hooks (crash/stall test harness; both optional).
  /// on_progress fires after every consumed chunk, on_commit after
  /// every durable checkpoint. Either may throw to simulate a crash at
  /// exactly that point; the exception aborts the attempt, not the run.
  std::function<void(std::size_t shard, std::uint64_t next)> on_progress;
  std::function<void(std::size_t shard, std::uint64_t next)> on_commit;
};

/// Per-shard outcome in the final report.
struct ShardReport {
  std::size_t shard = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  /// Traces durably merged into the final sums: hi on a completed
  /// shard, the last checkpoint boundary on a degraded one.
  std::uint64_t committed = 0;
  unsigned attempts = 0;
  bool done = false;
  bool wedged = false;  ///< the stall watchdog fired at least once
  /// Checkpoint file the (last) attempt resumed from; empty = fresh.
  std::string resumed_from;
  /// Stream digest (hex) over traces [lo, committed) — the verifiable
  /// identity of what this shard actually acquired.
  std::string digest_hex;
  /// Last attempt's error on a shard that exhausted its attempts.
  std::string error;
  /// Named checkpoint rejections met during recovery scans (e.g.
  /// "rejected shard-0.ckpt: payload digest mismatch").
  std::string recovery;
};

struct ShardedResult {
  std::string target;
  std::uint64_t key = 0;
  std::size_t total_traces = 0;
  /// Traces merged into the final attack sums (== total_traces on a
  /// clean run; less on a degraded one).
  std::size_t covered = 0;
  std::vector<ShardReport> shards;
  /// Attack outcome over the merged sums. On a degraded run this is the
  /// honest partial result over `covered` traces.
  std::optional<AttackOutcome> attack;
  /// True-key rank after each shard merge (x = cumulative merged
  /// traces) — the sharded analogue of the fused rank trajectory, at
  /// shard-boundary granularity.
  std::vector<RankPoint> rank_trajectory;
  double total_wall_ms = 0.0;

  bool complete() const noexcept { return covered == total_traces; }
  bool key_recovered() const noexcept {
    return attack && attack->true_key_rank == 0;
  }
  /// Per-shard coverage table (shard, range, committed, attempts,
  /// status, resumed-from, digest, error).
  util::Table table() const;
};

/// Everything the runtime needs about the campaign being sharded. The
/// instance and primary source are borrowed and must outlive the run.
struct CoordinatorConfig {
  const TargetInstance* inst = nullptr;
  const AttackConfig* attack = nullptr;
  /// Cloned once per shard attempt (plus per-worker clones inside each
  /// attempt's pool).
  const TraceSource* primary = nullptr;
  /// Identity of (target, key, seed, budget, geometry, attack, engine):
  /// ties checkpoints to this configuration.
  std::uint64_t fingerprint = 0;
  std::uint64_t seed = 1;
  std::size_t num_traces = 0;
  /// Acquisition threads per running shard.
  unsigned threads = 1;
};

/// The contiguous trace range of one shard.
struct ShardSpec {
  std::size_t shard = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Deterministic balanced partition of [0, num_traces) into `shards`
/// contiguous ranges (first `num_traces % shards` ranges one longer).
std::vector<ShardSpec> plan_shards(std::size_t num_traces, std::size_t shards);

/// One shard attempt: recover from the newest valid checkpoint, then
/// run the fused acquire-digest-accumulate loop window by window,
/// committing durably at every window boundary.
class ShardRunner {
 public:
  struct Outcome {
    ShardCheckpoint final_state;  ///< next == hi; acc_state at full range
    std::string resumed_from;     ///< adopted checkpoint file ("" = fresh)
    std::string recovery_notes;   ///< named rejections from the recovery scan
  };

  ShardRunner(const CoordinatorConfig& cfg, const ShardedOptions& opt,
              ShardSpec spec);

  /// Run to completion (or throw). `progress` is advanced by every
  /// consumed chunk (the watchdog's observable); `cancel`, when set,
  /// aborts the attempt with ShardStall at the next chunk boundary.
  /// Both may be null.
  Outcome run(std::atomic<std::uint64_t>* progress,
              const std::atomic<bool>* cancel);

 private:
  const CoordinatorConfig& cfg_;
  const ShardedOptions& opt_;
  ShardSpec spec_;
};

/// Dispatch, supervision, and merge. One-shot: construct, run(), read.
class Coordinator {
 public:
  Coordinator(CoordinatorConfig cfg, ShardedOptions opt);

  /// Run every shard (recovering from any checkpoints already on disk),
  /// then merge. Throws std::invalid_argument on an inconsistent
  /// configuration; shard failures degrade the result instead of
  /// throwing.
  ShardedResult run();

 private:
  CoordinatorConfig cfg_;
  ShardedOptions opt_;
};

}  // namespace qdi::campaign
