// FaultCampaign — the fault-injection counterpart of the power-analysis
// Campaign: sweep (site x kind x time) injections over a registry
// target, classify every run, and feed the exploitable differentials to
// DFA.
//
// The paper's DFA argument (sections V-VI) is that QDI dual-rail logic
// converts faults into *denial of service* instead of faulty
// ciphertexts: a stuck rail starves the completion tree, the four-phase
// handshake stalls, and the attacker collects nothing. This campaign
// measures that claim end to end. Every injection lands in exactly one
// class:
//
//   * Deadlock     — the handshake stalled (or overran its period, or
//                    the faulted netlist oscillated): no usable output.
//   * Masked       — the handshake completed with the correct
//                    ciphertext: the fault was logically absorbed.
//   * Exploitable  — valid-looking but WRONG outputs were emitted: a
//                    (golden, faulty) pair exists and DFA can vote on it.
//
// Determinism matches the power campaigns: run i draws its randomness
// from the domain-tagged stream split_stream(seed, i, kFaultDomain)
// (disjoint from acquisition's streams at the same seed), every run
// starts from the post-reset epoch, and classification i is
// bit-identical for any thread count, engine, or scheduler.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qdi/campaign/target.hpp"
#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/fault.hpp"
#include "qdi/util/table.hpp"

namespace qdi::campaign {

enum class FaultClass : std::uint8_t {
  Deadlock = 0,
  Masked = 1,
  Exploitable = 2,
};

inline const char* name(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::Deadlock: return "deadlock";
    case FaultClass::Masked: return "masked";
    case FaultClass::Exploitable: return "exploitable";
  }
  return "?";
}

struct FaultCampaignOptions {
  /// Explicit injection sites; empty = every gate-driven net of the
  /// target, optionally narrowed by `site_filters` (substring match on
  /// net names, see sim::fault_sites).
  std::vector<netlist::NetId> sites;
  std::vector<std::string> site_filters;
  /// Deterministic subsample cap on the site list (0 = keep all). The
  /// subsample is drawn from the campaign's domain-tagged stream, so it
  /// is identical for any thread count.
  std::size_t max_sites = 0;
  /// Fault polarities/kinds swept per site.
  std::vector<sim::FaultKind> kinds = {sim::FaultKind::StuckAt0,
                                       sim::FaultKind::StuckAt1};
  /// Injection offsets within the cycle, in ps from the cycle start.
  std::vector<double> times_ps = {0.0};
  /// Random plaintexts per (site, kind, time) combination.
  std::size_t repeats = 4;
  /// Transient width for Glitch0/Glitch1 kinds.
  double glitch_ps = 200.0;
  /// Run dfa_attack over the exploitable pairs (needs the target to
  /// carry a DfaModel).
  bool run_dfa = true;

  sim::DelayModel delays{};
  /// Compiled or Reference; the batch kernel cannot inject forces, so
  /// EngineKind::Batch is rejected by run_fault_campaign.
  sim::EngineKind engine = sim::EngineKind::Compiled;
  sim::SchedulerKind scheduler = sim::SchedulerKind::Wheel;
  /// Reuse an existing compiled form of the (post-flow) target netlist
  /// instead of flattening it once per sweep — what lets benches hoist
  /// compilation out of their timed loops. Must match the instance's
  /// netlist and `delays`. Compiled engine only.
  std::shared_ptr<const sim::CompiledNetlist> precompiled;
};

/// One classified injection run.
struct FaultRecord {
  netlist::NetId net = netlist::kNoNet;
  sim::FaultKind kind = sim::FaultKind::StuckAt0;
  double t_offset_ps = 0.0;
  std::uint8_t plaintext = 0;  ///< first plaintext byte of the stimulus
  std::uint8_t golden = 0;     ///< fault-free packed output byte
  std::uint8_t faulty = 0;     ///< faulted packed output byte (Exploitable)
  FaultClass cls = FaultClass::Deadlock;
  /// Where the handshake stalled (Deadlock only; None otherwise).
  sim::HandshakePhase stalled_phase = sim::HandshakePhase::None;
};

/// Per-variant fault-resilience counters — the row Campaign::sweep()
/// adds next to the DPA metrics.
struct FaultSummary {
  std::size_t runs = 0;
  std::size_t deadlock = 0;
  std::size_t masked = 0;
  std::size_t exploitable = 0;

  /// Fraction of injections that yielded DFA material. The paper's
  /// security claim is that this stays 0 on QDI targets.
  double exploitable_rate() const noexcept {
    return runs > 0 ? static_cast<double>(exploitable) /
                          static_cast<double>(runs)
                    : 0.0;
  }
};

struct FaultCampaignResult {
  std::string target;
  std::uint64_t key = 0;
  std::size_t sites = 0;       ///< injection sites after filters/subsample
  std::size_t injections = 0;  ///< sites x kinds x times
  FaultSummary summary;        ///< summary.runs = injections x repeats
  std::vector<FaultRecord> records;  ///< one per run, in run order
  /// The DFA material: (input, golden, faulty) for every exploitable run.
  std::vector<dpa::DfaPair> pairs;
  /// dfa_attack over `pairs` (present when run_dfa, the target has a
  /// DfaModel, and at least one pair was collected).
  std::optional<dpa::DfaResult> dfa;
  unsigned true_guess = 0;  ///< what dfa->rank_of should be called with

  /// One-line-per-class breakdown plus the DFA verdict.
  util::Table table() const;
};

/// Shared campaign core: sweep + classify + DFA over an already-built
/// (and possibly flow/recipe-processed) instance. Campaign::faults()
/// routes through this too, so standalone and sweep-embedded fault runs
/// agree bit for bit. Throws std::invalid_argument on a non-simulatable
/// instance, an empty kinds/times list, repeats == 0, or an empty
/// resolved site list.
FaultCampaignResult run_fault_campaign(const TargetInstance& inst,
                                       std::uint64_t key,
                                       const FaultCampaignOptions& opt,
                                       std::uint64_t seed, unsigned threads);

/// Fluent front end mirroring Campaign:
///
///   auto r = FaultCampaign()
///                .target(des_sbox_slice())
///                .key(0x2b)
///                .sites_matching("addkey0")
///                .repeats(8)
///                .threads(4)
///                .run();
class FaultCampaign {
 public:
  FaultCampaign& target(CircuitTarget t) { target_ = std::move(t); return *this; }
  FaultCampaign& key(std::uint64_t k) { key_ = k; return *this; }
  FaultCampaign& seed(std::uint64_t s) { seed_ = s; return *this; }
  FaultCampaign& threads(unsigned n) { threads_ = n; return *this; }

  FaultCampaign& sites(std::vector<netlist::NetId> s) {
    opt_.sites = std::move(s);
    return *this;
  }
  FaultCampaign& sites_matching(std::string filter) {
    opt_.site_filters.push_back(std::move(filter));
    return *this;
  }
  FaultCampaign& max_sites(std::size_t n) { opt_.max_sites = n; return *this; }
  FaultCampaign& kinds(std::vector<sim::FaultKind> k) {
    opt_.kinds = std::move(k);
    return *this;
  }
  FaultCampaign& times(std::vector<double> t_ps) {
    opt_.times_ps = std::move(t_ps);
    return *this;
  }
  FaultCampaign& repeats(std::size_t n) { opt_.repeats = n; return *this; }
  FaultCampaign& glitch_width(double ps) { opt_.glitch_ps = ps; return *this; }
  FaultCampaign& dfa(bool enabled) { opt_.run_dfa = enabled; return *this; }
  FaultCampaign& delays(sim::DelayModel d) { opt_.delays = d; return *this; }
  FaultCampaign& engine(sim::EngineKind k) { opt_.engine = k; return *this; }
  FaultCampaign& scheduler(sim::SchedulerKind k) {
    opt_.scheduler = k;
    return *this;
  }

  const FaultCampaignOptions& options() const noexcept { return opt_; }

  /// Build the target under the key and run the sweep. Throws
  /// std::invalid_argument on an inconsistent configuration (no target,
  /// non-simulatable target, empty kind/time/site lists, repeats == 0).
  FaultCampaignResult run() const;

 private:
  CircuitTarget target_;
  std::uint64_t key_ = 0;
  std::uint64_t seed_ = 1;
  unsigned threads_ = 1;
  FaultCampaignOptions opt_;
};

}  // namespace qdi::campaign
