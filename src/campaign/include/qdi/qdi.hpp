// qdi/qdi.hpp — the single facade header of the library.
//
// Pulls in every public module: netlist construction and the gate-level
// circuit generators, the event-driven simulator and four-phase
// environment, the power model, the place-and-route flow with the
// paper's dissymmetry criterion, the DPA/CPA/SPA analyses, and the
// campaign layer that ties them together. Examples, benches, and
// downstream users include this one header and the qdi::campaign API.
#pragma once

// util
#include "qdi/util/atomic_file.hpp"
#include "qdi/util/log.hpp"
#include "qdi/util/rng.hpp"
#include "qdi/util/sha256.hpp"
#include "qdi/util/stats.hpp"
#include "qdi/util/table.hpp"

// netlist
#include "qdi/netlist/cell_kind.hpp"
#include "qdi/netlist/graph.hpp"
#include "qdi/netlist/netlist.hpp"
#include "qdi/netlist/symmetry.hpp"
#include "qdi/netlist/verilog.hpp"

// crypto golden models
#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"

// gate-level circuit generators
#include "qdi/gates/aes_datapath.hpp"
#include "qdi/gates/builder.hpp"
#include "qdi/gates/des_datapath.hpp"
#include "qdi/gates/pipeline.hpp"
#include "qdi/gates/sbox.hpp"
#include "qdi/gates/testbench.hpp"

// simulation (reference interpreter + compiled kernel)
#include "qdi/sim/batch_netlist.hpp"
#include "qdi/sim/batch_simulator.hpp"
#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/compiled_simulator.hpp"
#include "qdi/sim/delay_model.hpp"
#include "qdi/sim/engine.hpp"
#include "qdi/sim/environment.hpp"
#include "qdi/sim/fault.hpp"
#include "qdi/sim/force.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/sim/transition.hpp"

// power model
#include "qdi/power/sample_matrix.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/power/trace.hpp"

// place-and-route
#include "qdi/pnr/extraction.hpp"
#include "qdi/pnr/placement.hpp"

// design flow, criterion, formal model
#include "qdi/core/criterion.hpp"
#include "qdi/core/formal_model.hpp"
#include "qdi/core/leakage.hpp"
#include "qdi/core/power_report.hpp"
#include "qdi/core/secure_flow.hpp"
#include "qdi/core/timing.hpp"

// countermeasure transform pipeline
#include "qdi/xform/pass.hpp"
#include "qdi/xform/passes.hpp"

// attacks
#include "qdi/dpa/cpa.hpp"
#include "qdi/dpa/dfa.hpp"
#include "qdi/dpa/dpa.hpp"
#include "qdi/dpa/online.hpp"
#include "qdi/dpa/selection.hpp"
#include "qdi/dpa/spa.hpp"
#include "qdi/dpa/trace_set.hpp"

// campaign API
#include "qdi/campaign/attack.hpp"
#include "qdi/campaign/batch_trace_source.hpp"
#include "qdi/campaign/campaign.hpp"
#include "qdi/campaign/checkpoint.hpp"
#include "qdi/campaign/fault_campaign.hpp"
#include "qdi/campaign/shard.hpp"
#include "qdi/campaign/target.hpp"
#include "qdi/campaign/trace_source.hpp"
