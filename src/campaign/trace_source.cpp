#include "qdi/campaign/trace_source.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace qdi::campaign {

namespace {

std::unique_ptr<sim::SimEngine> make_engine(
    const std::shared_ptr<const sim::CompiledNetlist>& compiled,
    const netlist::Netlist& nl, const SimTraceSourceOptions& opt) {
  if (compiled)
    return std::make_unique<sim::CompiledSimulator>(compiled, opt.scheduler);
  return std::make_unique<sim::Simulator>(nl, opt.delays);
}

}  // namespace

namespace {

const SimTraceSourceOptions& reject_batch(const SimTraceSourceOptions& opt) {
  if (opt.engine == sim::EngineKind::Batch)
    throw std::invalid_argument(
        "SimTraceSource: EngineKind::Batch runs through "
        "campaign::BatchSimTraceSource (Campaign::engine(Batch) builds "
        "it); SimTraceSource drives the scalar engines only");
  return opt;
}

}  // namespace

SimTraceSource::SimTraceSource(const netlist::Netlist& nl, sim::EnvSpec env,
                               StimulusFn stimulus, SimTraceSourceOptions opt)
    : nl_(&nl),
      spec_(std::move(env)),
      stimulus_(std::move(stimulus)),
      opt_(reject_batch(opt)),
      compiled_(opt_.engine == sim::EngineKind::Compiled
                    ? (opt_.precompiled ? opt_.precompiled
                                        : sim::compile(nl, opt_.delays))
                    : nullptr),
      sim_(make_engine(compiled_, nl, opt_)),
      csim_(compiled_ ? static_cast<sim::CompiledSimulator*>(sim_.get())
                      : nullptr),
      env_(*sim_, spec_),
      acc_(opt_.power) {
  if (!stimulus_)
    throw std::invalid_argument("SimTraceSource: stimulus is required");
}

SimTraceSource::SimTraceSource(const SimTraceSource& other, WorkerCloneTag)
    : nl_(other.nl_),
      spec_(other.spec_),
      stimulus_(other.stimulus_),
      opt_(other.opt_),
      compiled_(other.compiled_),  // the compiled form is shared read-only
      sim_(make_engine(compiled_, *nl_, opt_)),
      csim_(compiled_ ? static_cast<sim::CompiledSimulator*>(sim_.get())
                      : nullptr),
      env_(*sim_, spec_),
      acc_(opt_.power) {}

std::unique_ptr<TraceSource> SimTraceSource::clone() const {
  return std::unique_ptr<TraceSource>(
      new SimTraceSource(*this, WorkerCloneTag{}));
}

void SimTraceSource::acquire_into(const TraceRequest& req, AcquiredTrace& out) {
  // Every trace starts from the post-reset state in its own epoch:
  // identical absolute times, hence bit-identical floating point,
  // whatever trace history the worker carries. The compiled engine pays
  // the reset handshake once and restores its snapshot afterwards (an
  // O(activity) dirty-set revert); the reference engine re-simulates it
  // each trace.
  if (csim_ != nullptr && epoch_.has_value()) {
    csim_->restore_epoch(*epoch_);
  } else {
    sim_->reset_state();
    env_.apply_reset();
    if (csim_ != nullptr) epoch_ = csim_->save_epoch();
  }

  util::Rng rng = util::split_stream(req.seed, req.index);
  stimulus_(rng, req.index, stim_);
  // The window jitter is drawn before the cycle runs — the cycle itself
  // consumes no randomness, so the stream position is the same as
  // drawing it afterwards; this lets the streaming path open its window
  // up front.
  const double jitter = opt_.start_jitter_ps > 0.0
                            ? rng.uniform(0.0, opt_.start_jitter_ps)
                            : 0.0;

  if (opt_.engine == sim::EngineKind::Compiled) {
    // Streaming power: samples are binned at commit time; no transition
    // log is ever materialized, and finish_into ping-pongs the sample
    // buffer with the caller's slot — zero steady-state allocation.
    acc_.begin_window(env_.next_cycle_start() - jitter, spec_.period_ps);
    sim_->set_power_sink(&acc_);
    env_.send_into(stim_.values, cyc_);
    sim_->set_power_sink(nullptr);
    if (!cyc_.ok)
      throw std::runtime_error("SimTraceSource: four-phase protocol failure");
    acc_.finish_into(out.trace, &rng);
  } else {
    // Reference path: post-hoc synthesis from the transition log — kept
    // as the oracle that the streaming path is checked against.
    sim_->clear_log();
    env_.send_into(stim_.values, cyc_);
    if (!cyc_.ok)
      throw std::runtime_error("SimTraceSource: four-phase protocol failure");
    out.trace = power::synthesize(sim_->log(), cyc_.t_start - jitter,
                                  spec_.period_ps, opt_.power, &rng);
  }

  // Pack the decoded output channel values as "ciphertext" bytes
  // (LSB-first bit packing, 8 channels per byte).
  out.ciphertext.assign((cyc_.outputs.size() + 7) / 8, 0);
  for (std::size_t b = 0; b < cyc_.outputs.size(); ++b)
    if (cyc_.outputs[b] == 1)
      out.ciphertext[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
  // Copy (not move): stim_ is per-worker scratch whose capacity must
  // survive into the next trace.
  out.plaintext.assign(stim_.plaintext.begin(), stim_.plaintext.end());
  out.transitions = cyc_.transitions;
  out.glitches = sim_->glitch_count();
}

// ---- WorkerPool -------------------------------------------------------------

namespace {

unsigned clamp_threads(unsigned threads, std::size_t num_traces) {
  if (threads == 0) threads = 1;
  if (threads > num_traces)
    threads = static_cast<unsigned>(num_traces == 0 ? 1 : num_traces);
  return threads;
}

void finish_stats(AcquisitionStats& st, std::size_t num_traces,
                  std::chrono::steady_clock::time_point t0) {
  st.wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  st.traces_per_s =
      st.wall_ms > 0.0 ? 1e3 * static_cast<double>(num_traces) / st.wall_ms
                       : 0.0;
}

}  // namespace

WorkerPool::WorkerPool(TraceSource& src, unsigned threads) : src_(&src) {
  if (threads == 0) threads = 1;
  worker_clones_ = threads - 1;
  clones_.reserve(worker_clones_);
  for (unsigned w = 1; w < threads; ++w) clones_.push_back(src.clone());
}

void WorkerPool::rebind(TraceSource& src) {
  clones_.clear();
  src_ = &src;
  for (std::size_t w = 0; w < worker_clones_; ++w)
    clones_.push_back(src.clone());
}

void WorkerPool::unbind() noexcept {
  clones_.clear();
  src_ = nullptr;
}

/// Acquire requests [lo, hi) into scratch_[0 .. hi-lo), fanned out over
/// the primary source plus the clones in blocks of the source's
/// batch_width (1 for scalar sources, 64 for the batch engine; the last
/// block of a range may be partial). Deterministic in (seed, index) per
/// the TraceSource contract, whatever the thread count or the block
/// partition.
void WorkerPool::acquire_range(std::size_t lo, std::size_t hi,
                               std::uint64_t seed) {
  const std::size_t count = hi - lo;
  const std::size_t width = std::max<std::size_t>(src_->batch_width(), 1);
  const std::size_t num_blocks = (count + width - 1) / width;
  if (clones_.empty()) {
    for (std::size_t b = 0; b < count; b += width)
      src_->acquire_block(seed, lo + b, std::min(width, count - b),
                          scratch_.data() + b);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  auto worker = [&](TraceSource& s) {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_blocks) return;
      const std::size_t b = k * width;
      try {
        s.acquire_block(seed, lo + b, std::min(width, count - b),
                        scratch_.data() + b);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(num_blocks, std::memory_order_relaxed);  // drain
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(clones_.size());
  for (std::unique_ptr<TraceSource>& c : clones_)
    pool.emplace_back([&worker, &c] { worker(*c); });
  worker(*src_);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

dpa::TraceSet WorkerPool::acquire(std::size_t num_traces, std::uint64_t seed,
                                  AcquisitionStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();

  dpa::TraceSet ts;
  AcquisitionStats st;
  st.threads_used = clamp_threads(threads(), num_traces);
  st.per_trace_transitions.reserve(num_traces);

  // Acquire in bounded segments so the transient per-trace PowerTraces
  // never coexist with the whole SoA matrix — peak memory is one n×m
  // matrix plus one segment, not two full copies of the samples.
  constexpr std::size_t kSegment = 1024;
  if (scratch_.size() < std::min(kSegment, num_traces))
    scratch_.resize(std::min(kSegment, num_traces));
  for (std::size_t first = 0; first < num_traces; first += kSegment) {
    const std::size_t hi = std::min(first + kSegment, num_traces);
    acquire_range(first, hi, seed);
    for (std::size_t k = 0; k < hi - first; ++k) {
      const AcquiredTrace& a = scratch_[k];
      st.transitions += a.transitions;
      st.glitches += a.glitches;
      st.per_trace_transitions.push_back(a.transitions);
      // Span-based add: copies into the SoA matrix without stealing the
      // reusable slot buffers.
      ts.add(power::TraceView(a.trace), a.plaintext, a.ciphertext);
      if (ts.size() == 1) ts.reserve(num_traces);
    }
  }
  finish_stats(st, num_traces, t0);
  if (stats) *stats = std::move(st);
  return ts;
}

void WorkerPool::acquire_chunked(
    std::size_t num_traces, std::uint64_t seed, std::size_t chunk,
    const std::function<void(const dpa::TraceSet& segment, std::size_t first)>&
        consume,
    AcquisitionStats* stats) {
  acquire_chunked_range(0, num_traces, seed, chunk, consume, stats);
}

void WorkerPool::acquire_chunked_range(
    std::size_t first_index, std::size_t count, std::uint64_t seed,
    std::size_t chunk,
    const std::function<void(const dpa::TraceSet& segment, std::size_t first)>&
        consume,
    AcquisitionStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  if (chunk == 0) chunk = 1;
  const std::size_t end = first_index + count;

  AcquisitionStats st;
  st.threads_used = clamp_threads(threads(), count);
  // No per_trace_transitions here: a per-trace vector would grow with
  // the trace budget, defeating the O(chunk) memory contract. Aggregate
  // counters are still exact.

  if (scratch_.size() < std::min(chunk, count))
    scratch_.resize(std::min(chunk, count));
  dpa::TraceSet& segment = chunk_buf_;
  for (std::size_t first = first_index; first < end; first += chunk) {
    const std::size_t hi = std::min(first + chunk, end);
    acquire_range(first, hi, seed);
    segment.clear();
    for (std::size_t k = 0; k < hi - first; ++k) {
      const AcquiredTrace& a = scratch_[k];
      st.transitions += a.transitions;
      st.glitches += a.glitches;
      segment.add(power::TraceView(a.trace), a.plaintext, a.ciphertext);
    }
    consume(segment, first);
  }
  finish_stats(st, count, t0);
  if (stats) *stats = std::move(st);
}

void WorkerPool::acquire_each(
    std::size_t num_traces, std::uint64_t seed, std::size_t chunk,
    const std::function<void(std::size_t index, const AcquiredTrace& rec)>&
        consume,
    AcquisitionStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  if (chunk == 0) chunk = 1;

  AcquisitionStats st;
  st.threads_used = clamp_threads(threads(), num_traces);

  if (scratch_.size() < std::min(chunk, num_traces))
    scratch_.resize(std::min(chunk, num_traces));
  for (std::size_t first = 0; first < num_traces; first += chunk) {
    const std::size_t hi = std::min(first + chunk, num_traces);
    acquire_range(first, hi, seed);
    for (std::size_t k = 0; k < hi - first; ++k) {
      const AcquiredTrace& a = scratch_[k];
      st.transitions += a.transitions;
      st.glitches += a.glitches;
      consume(first + k, a);
    }
  }
  finish_stats(st, num_traces, t0);
  if (stats) *stats = std::move(st);
}

void WorkerPool::acquire_sharded_range(std::size_t first_index,
                                       std::size_t count, std::uint64_t seed,
                                       std::size_t block_traces,
                                       const std::vector<std::size_t>& extra_cuts,
                                       const ShardedIngest& consumer,
                                       AcquisitionStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  if (block_traces == 0) block_traces = 1;
  const std::size_t end = first_index + count;

  AcquisitionStats st;
  st.threads_used = clamp_threads(threads(), count);

  // Blocks are keyed by ABSOLUTE trace index — cut at global multiples
  // of block_traces plus the caller's extra cuts — so the partition
  // depends only on (range, width, cuts). A re-threaded or resumed run
  // re-derives the identical block set, which is what makes the
  // commit-side fold independent of the thread count.
  std::vector<std::size_t> cuts(extra_cuts);
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  {
    std::size_t lo = first_index;
    std::size_t ci = 0;
    while (lo < end) {
      std::size_t hi = std::min(end, (lo / block_traces + 1) * block_traces);
      while (ci < cuts.size() && cuts[ci] <= lo) ++ci;
      if (ci < cuts.size() && cuts[ci] < hi) hi = cuts[ci];
      blocks.emplace_back(lo, hi);
      lo = hi;
    }
  }

  if (sharded_scratch_.size() < threads()) sharded_scratch_.resize(threads());
  const std::size_t width = std::max<std::size_t>(src_->batch_width(), 1);

  // Acquire + assemble + ingest one block on worker `w`.
  auto run_block = [&](unsigned w, std::size_t k, dpa::TraceSet& seg,
                       std::size_t* transitions, std::size_t* glitches) {
    const std::size_t lo = blocks[k].first;
    const std::size_t cnt = blocks[k].second - lo;
    std::vector<AcquiredTrace>& slots = sharded_scratch_[w];
    if (slots.size() < cnt) slots.resize(cnt);
    TraceSource& s = (w == 0) ? *src_ : *clones_[w - 1];
    for (std::size_t b = 0; b < cnt; b += width)
      s.acquire_block(seed, lo + b, std::min(width, cnt - b),
                      slots.data() + b);
    seg.clear();
    for (std::size_t i = 0; i < cnt; ++i) {
      const AcquiredTrace& a = slots[i];
      *transitions += a.transitions;
      *glitches += a.glitches;
      seg.add(power::TraceView(a.trace), a.plaintext, a.ciphertext);
    }
    if (consumer.ingest) consumer.ingest(w, k, seg, lo);
  };

  if (clones_.empty() || blocks.size() <= 1) {
    // Single-worker form: same block partition, same ingest-then-commit
    // calls per block — bit-identical consumer observations, no threads.
    if (sharded_segments_.empty())
      sharded_segments_.push_back(std::make_unique<dpa::TraceSet>());
    dpa::TraceSet& seg = *sharded_segments_.front();
    for (std::size_t k = 0; k < blocks.size(); ++k) {
      run_block(0, k, seg, &st.transitions, &st.glitches);
      if (consumer.commit) consumer.commit(k, seg, blocks[k].first);
    }
    finish_stats(st, count, t0);
    if (stats) *stats = std::move(st);
    return;
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t next = 0;      // next unclaimed block
  std::size_t frontier = 0;  // next block to commit
  bool committing = false;   // a worker is inside the commit chain
  std::exception_ptr first_error;
  std::vector<std::unique_ptr<dpa::TraceSet>> done(blocks.size());
  // Claim gate: fast workers may run at most a few blocks ahead of the
  // commit frontier, bounding live segments at O(threads). The frontier
  // block's owner is never gated (its claim already happened), so the
  // frontier always advances — no deadlock.
  const std::size_t max_inflight = 2 * static_cast<std::size_t>(threads()) + 2;

  auto worker = [&](unsigned w) {
    std::size_t my_transitions = 0;
    std::size_t my_glitches = 0;
    for (;;) {
      std::size_t k = 0;
      std::unique_ptr<dpa::TraceSet> seg;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return first_error != nullptr || next >= blocks.size() ||
                 next - frontier < max_inflight;
        });
        if (first_error != nullptr || next >= blocks.size()) break;
        k = next++;
        if (!sharded_segments_.empty()) {
          seg = std::move(sharded_segments_.back());
          sharded_segments_.pop_back();
        }
      }
      if (!seg) seg = std::make_unique<dpa::TraceSet>();
      try {
        run_block(w, k, *seg, &my_transitions, &my_glitches);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        cv.notify_all();
        break;
      }
      std::unique_lock<std::mutex> lock(mu);
      done[k] = std::move(seg);
      if (!committing) {
        // Drain the commit chain: everything contiguous from the
        // frontier, in ascending block order, outside the lock. The
        // `committing` flag keeps the chain single-threaded while other
        // workers keep claiming and ingesting.
        committing = true;
        while (first_error == nullptr && frontier < blocks.size() &&
               done[frontier]) {
          const std::size_t fk = frontier;
          std::unique_ptr<dpa::TraceSet> fs = std::move(done[fk]);
          lock.unlock();
          try {
            if (consumer.commit) consumer.commit(fk, *fs, blocks[fk].first);
          } catch (...) {
            lock.lock();
            if (!first_error) first_error = std::current_exception();
            break;
          }
          lock.lock();
          sharded_segments_.push_back(std::move(fs));
          ++frontier;
          cv.notify_all();
        }
        committing = false;
        cv.notify_all();
      }
    }
    const std::lock_guard<std::mutex> lock(mu);
    st.transitions += my_transitions;
    st.glitches += my_glitches;
  };

  std::vector<std::thread> pool;
  pool.reserve(clones_.size());
  for (unsigned w = 1; w <= static_cast<unsigned>(clones_.size()); ++w)
    pool.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  finish_stats(st, count, t0);
  if (stats) *stats = std::move(st);
}

// ---- one-shot wrappers ------------------------------------------------------

dpa::TraceSet acquire_batch(TraceSource& src, std::size_t num_traces,
                            std::uint64_t seed, unsigned threads,
                            AcquisitionStats* stats) {
  WorkerPool pool(src, clamp_threads(threads, num_traces));
  return pool.acquire(num_traces, seed, stats);
}

void acquire_chunked(
    TraceSource& src, std::size_t num_traces, std::uint64_t seed,
    unsigned threads, std::size_t chunk,
    const std::function<void(const dpa::TraceSet& segment, std::size_t first)>&
        consume,
    AcquisitionStats* stats) {
  WorkerPool pool(src, clamp_threads(threads, num_traces));
  pool.acquire_chunked(num_traces, seed, chunk, consume, stats);
}

}  // namespace qdi::campaign
