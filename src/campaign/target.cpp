#include "qdi/campaign/target.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/gates/builder.hpp"
#include "qdi/gates/des_datapath.hpp"
#include "qdi/gates/testbench.hpp"

namespace qdi::campaign {

TargetInstance CircuitTarget::build(std::uint64_t key) const {
  if (!build_)
    throw std::invalid_argument("CircuitTarget: empty target (no build fn)");
  TargetInstance inst = build_(key);
  inst.name = name_;
  return inst;
}

namespace {

/// Bits of `value` (LSB first) as 1-of-2 channel values.
void push_bits(std::vector<int>& values, unsigned value, int bits) {
  for (int b = 0; b < bits; ++b) values.push_back((value >> b) & 1);
}

/// Bits of `value` (LSB first) as a golden output vector.
std::vector<int> bit_outputs(unsigned value, int bits) {
  std::vector<int> out;
  for (int b = 0; b < bits; ++b) out.push_back((value >> b) & 1);
  return out;
}

}  // namespace

CircuitTarget aes_byte_slice(double period_ps) {
  return CircuitTarget("aes_byte_slice", [period_ps](std::uint64_t key) {
    gates::AesByteSlice slice = gates::build_aes_byte_slice(period_ps);
    const auto key_byte = static_cast<std::uint8_t>(key & 0xff);
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    inst.stimulus = [key_byte](util::Rng& rng, std::size_t, Stimulus& st) {
      const std::uint8_t p = rng.byte();
      st.values.clear();
      push_bits(st.values, p, 8);
      push_bits(st.values, key_byte, 8);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 256;
    inst.true_guess = key_byte;
    for (int b = 0; b < 8; ++b)
      inst.selection_bits.push_back(dpa::aes_sbox_selection(0, b));
    inst.leakage = dpa::aes_sbox_hw_model(0);
    inst.golden = [key_byte](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(crypto::aes_sbox(
                             static_cast<std::uint8_t>(pt.at(0) ^ key_byte)),
                         8);
    };
    inst.dfa = dpa::aes_sbox_dfa_model();
    return inst;
  });
}

CircuitTarget des_sbox_slice(int box, double period_ps) {
  return CircuitTarget("des_sbox_slice", [box, period_ps](std::uint64_t key) {
    gates::DesSboxSlice slice = gates::build_des_sbox_slice(box, period_ps);
    const auto key6 = static_cast<std::uint8_t>(key & 0x3f);
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    inst.stimulus = [key6](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto p = static_cast<std::uint8_t>(rng.below(64));
      st.values.clear();
      push_bits(st.values, p, 6);
      push_bits(st.values, key6, 6);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 64;
    inst.true_guess = key6;
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(box, b));
    inst.leakage = dpa::des_sbox_hw_model(box);
    inst.golden = [box, key6](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(
          crypto::des_sbox(box, static_cast<std::uint8_t>(pt.at(0) ^ key6)),
          4);
    };
    inst.dfa = dpa::des_sbox_dfa_model(box);
    return inst;
  });
}

CircuitTarget des_sbox_sync(int box, double period_ps) {
  return CircuitTarget("des_sbox_sync", [box, period_ps](std::uint64_t key) {
    gates::DesSboxSync sync = gates::build_des_sbox_sync(box, period_ps);
    const auto key6 = static_cast<std::uint8_t>(key & 0x3f);
    TargetInstance inst;
    inst.nl = std::move(sync.nl);
    inst.env = std::move(sync.env);
    inst.stimulus = [key6](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto p = static_cast<std::uint8_t>(rng.below(64));
      st.values.clear();
      push_bits(st.values, p, 6);
      push_bits(st.values, key6, 6);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 64;
    inst.true_guess = key6;
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(box, b));
    inst.leakage = dpa::des_sbox_hw_model(box);
    inst.golden = [box, key6](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(
          crypto::des_sbox(box, static_cast<std::uint8_t>(pt.at(0) ^ key6)),
          4);
    };
    inst.dfa = dpa::des_sbox_dfa_model(box);
    return inst;
  });
}

CircuitTarget xor_stage(double period_ps) {
  return CircuitTarget("xor_stage", [period_ps](std::uint64_t) {
    gates::XorStage x = gates::build_xor_stage(period_ps);
    TargetInstance inst;
    inst.nl = std::move(x.nl);
    inst.env = std::move(x.env);
    inst.stimulus = [](util::Rng& rng, std::size_t, Stimulus& st) {
      const int a = static_cast<int>(rng.below(2));
      const int b = static_cast<int>(rng.below(2));
      st.values.assign({a, b});
      st.plaintext.assign({static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)});
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0) ^ pt.at(1)};
    };
    return inst;
  });
}

CircuitTarget des_round(double period_ps) {
  return CircuitTarget("des_round", [period_ps](std::uint64_t key) {
    gates::DesRoundSlice slice = gates::build_des_round_slice(period_ps);
    const std::uint64_t subkey = key & 0xffffffffffffULL;
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    // Random R half (L = 0) against the fixed round key; plaintext(i)
    // records SBOX1's 6-bit input E(R)[1..6] so D can re-derive classes.
    inst.stimulus = [subkey](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto r = static_cast<std::uint32_t>(rng.next());
      st.values.clear();
      for (int i = 0; i < 32; ++i) st.values.push_back(0);  // L = 0
      for (int i = 0; i < 32; ++i)
        st.values.push_back(static_cast<int>((r >> (31 - i)) & 1));
      for (int i = 0; i < 48; ++i)
        st.values.push_back(static_cast<int>((subkey >> (47 - i)) & 1));
      std::uint8_t six = 0;
      const auto et = crypto::des_expansion_table();
      for (int j = 0; j < 6; ++j) {
        const int bit = static_cast<int>(
            (r >> (32 - et[static_cast<std::size_t>(j)])) & 1);
        six = static_cast<std::uint8_t>((six << 1) | bit);
      }
      st.plaintext.assign(1, six);
    };
    inst.num_guesses = 64;
    inst.true_guess = static_cast<unsigned>((subkey >> 42) & 0x3f);
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(0, b));
    inst.leakage = dpa::des_sbox_hw_model(0);
    return inst;
  });
}

CircuitTarget dual_rail_pair(double period_ps) {
  return CircuitTarget("dual_rail_pair", [period_ps](std::uint64_t) {
    TargetInstance inst;
    inst.nl = netlist::Netlist("dual_rail_pair");
    gates::Builder b(inst.nl);
    gates::DualRail lo = b.dr_input("lo");
    gates::DualRail hi = b.dr_input("hi");
    for (const gates::DualRail* d : {&lo, &hi}) {
      const netlist::NetId q0 = b.buf(d->r0);
      const netlist::NetId q1 = b.buf(d->r1);
      const gates::DualRail out = b.as_dual_rail(q0, q1, "q");
      b.dr_output(out, "q");
      inst.env.outputs.push_back(out.ch);
    }
    inst.env.inputs = {lo.ch, hi.ch};
    inst.env.period_ps = period_ps;
    inst.stimulus = [](util::Rng&, std::size_t index, Stimulus& st) {
      const int v = static_cast<int>(index % 4);
      st.values.assign({v & 1, (v >> 1) & 1});
      st.plaintext.assign(1, static_cast<std::uint8_t>(v));
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0) & 1, (pt.at(0) >> 1) & 1};
    };
    return inst;
  });
}

CircuitTarget one_of_four(double period_ps) {
  return CircuitTarget("one_of_four", [period_ps](std::uint64_t) {
    TargetInstance inst;
    inst.nl = netlist::Netlist("one_of_four");
    gates::Builder b(inst.nl);
    gates::OneOfN q = b.one_of_n_input("q", 4);
    std::vector<netlist::NetId> out_rails;
    for (netlist::NetId r : q.rails) out_rails.push_back(b.buf(r));
    const netlist::ChannelId out_ch = inst.nl.add_channel("qo", out_rails);
    for (std::size_t i = 0; i < out_rails.size(); ++i)
      b.output(out_rails[i], "qo" + std::to_string(i));
    inst.env.inputs = {q.ch};
    inst.env.outputs = {out_ch};
    inst.env.period_ps = period_ps;
    inst.stimulus = [](util::Rng&, std::size_t index, Stimulus& st) {
      const int v = static_cast<int>(index % 4);
      st.values.assign(1, v);
      st.plaintext.assign(1, static_cast<std::uint8_t>(v));
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0)};
    };
    return inst;
  });
}

namespace {

/// Software reference for one aes_core handshake (validated against the
/// gate netlist on both dsel parities): the key path derives
///   x = sel_key ? RotWord(w) : w;  subkey = SubWord(x);  subkey[0] ^= rc
/// and the cipher path computes
///   sr = ShiftRow(SubWord(data ^ subkey))
///   data_out = (dsel ? sr : MixColumn(sr)) ^ subkey,  nk_out = subkey.
/// Byte i of a word is bits [8i, 8i+8) — the channel-group order.
void aes_core_iteration(std::uint32_t data, std::uint32_t key_w,
                        std::uint8_t rc, int sel_key, int dsel,
                        std::uint32_t* data_out, std::uint32_t* nk_out) {
  const auto byte = [](std::uint32_t w, int i) {
    return static_cast<std::uint8_t>(w >> (8 * i));
  };
  const std::uint32_t x = sel_key ? ((key_w >> 8) | (key_w << 24)) : key_w;
  std::uint32_t subkey = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint8_t sk = crypto::aes_sbox(byte(x, i));
    if (i == 0) sk = static_cast<std::uint8_t>(sk ^ rc);
    subkey |= static_cast<std::uint32_t>(sk) << (8 * i);
  }
  *nk_out = subkey;
  const std::uint32_t a0 = data ^ subkey;
  std::uint32_t sr = 0;
  for (int i = 0; i < 4; ++i)
    sr |= static_cast<std::uint32_t>(crypto::aes_sbox(byte(a0, (i + 1) % 4)))
          << (8 * i);
  if (dsel == 1) {
    *data_out = sr ^ subkey;
    return;
  }
  crypto::Block col{};
  for (int i = 0; i < 4; ++i) col[static_cast<std::size_t>(i)] = byte(sr, i);
  crypto::mix_columns(col);
  std::uint32_t mix = 0;
  for (int i = 0; i < 4; ++i)
    mix |= static_cast<std::uint32_t>(col[static_cast<std::size_t>(i)])
           << (8 * i);
  *data_out = mix ^ subkey;
}

}  // namespace

CircuitTarget aes_core(gates::AesCoreParams params) {
  return CircuitTarget("aes_core", [params](std::uint64_t key) {
    gates::AesCoreNetlist core = gates::build_aes_core(params);
    TargetInstance inst;

    // Reduced builds (no key path / no interface) lack the env ports:
    // they stay flow/criterion-only like the pre-env core did.
    const bool full = !core.data_in_channels.empty() &&
                      !core.key_in_channels.empty() &&
                      !core.data_out_channels.empty() &&
                      !core.nk_out_channels.empty();
    if (!full) {
      inst.nl = std::move(core.nl);
      inst.simulatable = false;
      return inst;
    }

    // The campaign key's low 32 bits are the round-key word in flight;
    // sel_key=1 routes it through RotWord, so the first subkey byte —
    // the CPA target — is sbox(byte1(w)) ^ rc.
    const auto key_w = static_cast<std::uint32_t>(key);
    const std::uint8_t rc = 0x01;

    inst.nl = std::move(core.nl);
    for (netlist::ChannelId c : core.data_in_channels)
      inst.env.inputs.push_back(c);
    for (netlist::ChannelId c : core.key_in_channels)
      inst.env.inputs.push_back(c);
    for (netlist::ChannelId c : core.rc_channels) inst.env.inputs.push_back(c);
    inst.env.inputs.push_back(core.sel_key_channel);
    inst.env.inputs.push_back(core.ctrl_key_channel);
    inst.env.inputs.push_back(core.round_sel_channel);
    inst.env.inputs.push_back(core.path_sel_channel);
    inst.env.inputs.push_back(core.loop_sel_channel);
    inst.env.inputs.push_back(core.bank_sel_channel);
    inst.env.inputs.push_back(core.dsel_channel);
    for (netlist::ChannelId c : core.data_out_channels)
      inst.env.outputs.push_back(c);
    for (netlist::ChannelId c : core.nk_out_channels)
      inst.env.outputs.push_back(c);
    inst.env.acks_to_block = {core.gack};
    inst.env.reset = core.reset;
    // Measured handshake: outputs valid ~4 ns, return-to-zero complete
    // ~8 ns after the input phase; 20 ns leaves QDI slack.
    inst.env.period_ps = 20000.0;

    // Random data word per trace; dsel alternates so both the MixColumn
    // round path and the final-round bypass are exercised. round_sel and
    // bank_sel stay 0 (they must agree for the recirculation banks to
    // hand off). Plaintext record = the four data bytes + dsel, so the
    // golden reference is a pure function of the record.
    inst.stimulus = [key_w, rc](util::Rng& rng, std::size_t index,
                                Stimulus& st) {
      const auto data = static_cast<std::uint32_t>(rng.next());
      const int dsel = static_cast<int>(index % 2);
      st.values.clear();
      push_bits(st.values, data, 32);
      push_bits(st.values, key_w, 32);
      push_bits(st.values, rc, 8);
      st.values.push_back(1);     // sel_key: RotWord path
      st.values.push_back(0);     // ctrl_key
      st.values.push_back(0);     // round_sel (== bank_sel)
      st.values.push_back(0);     // path_sel
      st.values.push_back(0);     // loop_sel
      st.values.push_back(0);     // bank_sel
      st.values.push_back(dsel);  // 0 = MixColumn round, 1 = last round
      st.plaintext.assign({static_cast<std::uint8_t>(data),
                           static_cast<std::uint8_t>(data >> 8),
                           static_cast<std::uint8_t>(data >> 16),
                           static_cast<std::uint8_t>(data >> 24),
                           static_cast<std::uint8_t>(dsel)});
    };

    // The hardware computes sbox(data_byte0 ^ subkey_byte0) in the
    // cipher path's BYTESUB: first-round AES CPA with the subkey byte as
    // the guess, exactly the aes_byte_slice analysis side.
    inst.num_guesses = 256;
    inst.true_guess = static_cast<unsigned>(
        crypto::aes_sbox(static_cast<std::uint8_t>(key_w >> 8)) ^ rc);
    for (int b = 0; b < 8; ++b)
      inst.selection_bits.push_back(dpa::aes_sbox_selection(0, b));
    inst.leakage = dpa::aes_sbox_hw_model(0);
    inst.golden = [key_w, rc](const std::vector<std::uint8_t>& pt) {
      const std::uint32_t data =
          static_cast<std::uint32_t>(pt.at(0)) |
          (static_cast<std::uint32_t>(pt.at(1)) << 8) |
          (static_cast<std::uint32_t>(pt.at(2)) << 16) |
          (static_cast<std::uint32_t>(pt.at(3)) << 24);
      const int dsel = pt.at(4);
      std::uint32_t data_out = 0, nk_out = 0;
      aes_core_iteration(data, key_w, rc, /*sel_key=*/1, dsel, &data_out,
                         &nk_out);
      std::vector<int> out = bit_outputs(data_out, 32);
      const std::vector<int> nk = bit_outputs(nk_out, 32);
      out.insert(out.end(), nk.begin(), nk.end());
      return out;
    };
    return inst;
  });
}

CircuitTarget prebuilt(TargetInstance inst) {
  auto shared = std::make_shared<const TargetInstance>(std::move(inst));
  return CircuitTarget(shared->name.empty() ? "prebuilt" : shared->name,
                       [shared](std::uint64_t) { return *shared; });
}

CircuitTarget transformed(CircuitTarget base, xform::Recipe recipe) {
  const std::string name = base.name() + "+" + recipe.name;
  auto shared = std::make_shared<const xform::Recipe>(std::move(recipe));
  // Build + pipeline runs are memoized per key: repeated campaigns over
  // one transformed target (fused CPA then fault then batch, or a
  // ranked sweep re-running per trace count) pay the netlist build and
  // the pass pipeline once. Both are deterministic functions of
  // (target, recipe, key), so the cache can never serve a stale
  // instance; callers get a copy to mutate freely.
  struct Memo {
    std::mutex mu;
    std::map<std::uint64_t, std::shared_ptr<const TargetInstance>> by_key;
  };
  auto memo = std::make_shared<Memo>();
  return CircuitTarget(
      name, [base = std::move(base), shared, memo](std::uint64_t key) {
        {
          const std::lock_guard<std::mutex> lock(memo->mu);
          const auto it = memo->by_key.find(key);
          if (it != memo->by_key.end()) return *it->second;
        }
        TargetInstance inst = base.build(key);
        shared->pipeline.run(inst.nl);
        auto built = std::make_shared<const TargetInstance>(std::move(inst));
        const std::lock_guard<std::mutex> lock(memo->mu);
        return *memo->by_key.try_emplace(key, std::move(built)).first->second;
      });
}

namespace {

/// One table drives both the listing and the lookup, so the two can
/// never drift apart.
struct RegistryEntry {
  const char* name;
  CircuitTarget (*make)();
};

const RegistryEntry kRegistry[] = {
    {"aes_byte_slice", [] { return aes_byte_slice(); }},
    {"des_sbox_slice", [] { return des_sbox_slice(); }},
    {"des_sbox_sync", [] { return des_sbox_sync(); }},
    {"xor_stage", [] { return xor_stage(); }},
    {"des_round", [] { return des_round(); }},
    {"dual_rail_pair", [] { return dual_rail_pair(); }},
    {"one_of_four", [] { return one_of_four(); }},
    {"aes_core", [] { return aes_core(); }},
};

}  // namespace

std::vector<std::string> list_targets() {
  std::vector<std::string> names;
  for (const RegistryEntry& e : kRegistry) names.emplace_back(e.name);
  return names;
}

CircuitTarget find_target(const std::string& name) {
  for (const RegistryEntry& e : kRegistry)
    if (name == e.name) return e.make();
  throw std::invalid_argument("find_target: unknown target '" + name + "'");
}

}  // namespace qdi::campaign
