#include "qdi/campaign/target.hpp"

#include <memory>
#include <stdexcept>

#include "qdi/crypto/aes.hpp"
#include "qdi/crypto/des.hpp"
#include "qdi/gates/builder.hpp"
#include "qdi/gates/des_datapath.hpp"
#include "qdi/gates/testbench.hpp"

namespace qdi::campaign {

TargetInstance CircuitTarget::build(std::uint64_t key) const {
  if (!build_)
    throw std::invalid_argument("CircuitTarget: empty target (no build fn)");
  TargetInstance inst = build_(key);
  inst.name = name_;
  return inst;
}

namespace {

/// Bits of `value` (LSB first) as 1-of-2 channel values.
void push_bits(std::vector<int>& values, unsigned value, int bits) {
  for (int b = 0; b < bits; ++b) values.push_back((value >> b) & 1);
}

/// Bits of `value` (LSB first) as a golden output vector.
std::vector<int> bit_outputs(unsigned value, int bits) {
  std::vector<int> out;
  for (int b = 0; b < bits; ++b) out.push_back((value >> b) & 1);
  return out;
}

}  // namespace

CircuitTarget aes_byte_slice(double period_ps) {
  return CircuitTarget("aes_byte_slice", [period_ps](std::uint64_t key) {
    gates::AesByteSlice slice = gates::build_aes_byte_slice(period_ps);
    const auto key_byte = static_cast<std::uint8_t>(key & 0xff);
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    inst.stimulus = [key_byte](util::Rng& rng, std::size_t, Stimulus& st) {
      const std::uint8_t p = rng.byte();
      st.values.clear();
      push_bits(st.values, p, 8);
      push_bits(st.values, key_byte, 8);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 256;
    inst.true_guess = key_byte;
    for (int b = 0; b < 8; ++b)
      inst.selection_bits.push_back(dpa::aes_sbox_selection(0, b));
    inst.leakage = dpa::aes_sbox_hw_model(0);
    inst.golden = [key_byte](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(crypto::aes_sbox(
                             static_cast<std::uint8_t>(pt.at(0) ^ key_byte)),
                         8);
    };
    inst.dfa = dpa::aes_sbox_dfa_model();
    return inst;
  });
}

CircuitTarget des_sbox_slice(int box, double period_ps) {
  return CircuitTarget("des_sbox_slice", [box, period_ps](std::uint64_t key) {
    gates::DesSboxSlice slice = gates::build_des_sbox_slice(box, period_ps);
    const auto key6 = static_cast<std::uint8_t>(key & 0x3f);
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    inst.stimulus = [key6](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto p = static_cast<std::uint8_t>(rng.below(64));
      st.values.clear();
      push_bits(st.values, p, 6);
      push_bits(st.values, key6, 6);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 64;
    inst.true_guess = key6;
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(box, b));
    inst.leakage = dpa::des_sbox_hw_model(box);
    inst.golden = [box, key6](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(
          crypto::des_sbox(box, static_cast<std::uint8_t>(pt.at(0) ^ key6)),
          4);
    };
    inst.dfa = dpa::des_sbox_dfa_model(box);
    return inst;
  });
}

CircuitTarget des_sbox_sync(int box, double period_ps) {
  return CircuitTarget("des_sbox_sync", [box, period_ps](std::uint64_t key) {
    gates::DesSboxSync sync = gates::build_des_sbox_sync(box, period_ps);
    const auto key6 = static_cast<std::uint8_t>(key & 0x3f);
    TargetInstance inst;
    inst.nl = std::move(sync.nl);
    inst.env = std::move(sync.env);
    inst.stimulus = [key6](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto p = static_cast<std::uint8_t>(rng.below(64));
      st.values.clear();
      push_bits(st.values, p, 6);
      push_bits(st.values, key6, 6);
      st.plaintext.assign(1, p);
    };
    inst.num_guesses = 64;
    inst.true_guess = key6;
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(box, b));
    inst.leakage = dpa::des_sbox_hw_model(box);
    inst.golden = [box, key6](const std::vector<std::uint8_t>& pt) {
      return bit_outputs(
          crypto::des_sbox(box, static_cast<std::uint8_t>(pt.at(0) ^ key6)),
          4);
    };
    inst.dfa = dpa::des_sbox_dfa_model(box);
    return inst;
  });
}

CircuitTarget xor_stage(double period_ps) {
  return CircuitTarget("xor_stage", [period_ps](std::uint64_t) {
    gates::XorStage x = gates::build_xor_stage(period_ps);
    TargetInstance inst;
    inst.nl = std::move(x.nl);
    inst.env = std::move(x.env);
    inst.stimulus = [](util::Rng& rng, std::size_t, Stimulus& st) {
      const int a = static_cast<int>(rng.below(2));
      const int b = static_cast<int>(rng.below(2));
      st.values.assign({a, b});
      st.plaintext.assign({static_cast<std::uint8_t>(a),
                           static_cast<std::uint8_t>(b)});
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0) ^ pt.at(1)};
    };
    return inst;
  });
}

CircuitTarget des_round(double period_ps) {
  return CircuitTarget("des_round", [period_ps](std::uint64_t key) {
    gates::DesRoundSlice slice = gates::build_des_round_slice(period_ps);
    const std::uint64_t subkey = key & 0xffffffffffffULL;
    TargetInstance inst;
    inst.nl = std::move(slice.nl);
    inst.env = std::move(slice.env);
    // Random R half (L = 0) against the fixed round key; plaintext(i)
    // records SBOX1's 6-bit input E(R)[1..6] so D can re-derive classes.
    inst.stimulus = [subkey](util::Rng& rng, std::size_t, Stimulus& st) {
      const auto r = static_cast<std::uint32_t>(rng.next());
      st.values.clear();
      for (int i = 0; i < 32; ++i) st.values.push_back(0);  // L = 0
      for (int i = 0; i < 32; ++i)
        st.values.push_back(static_cast<int>((r >> (31 - i)) & 1));
      for (int i = 0; i < 48; ++i)
        st.values.push_back(static_cast<int>((subkey >> (47 - i)) & 1));
      std::uint8_t six = 0;
      const auto et = crypto::des_expansion_table();
      for (int j = 0; j < 6; ++j) {
        const int bit = static_cast<int>(
            (r >> (32 - et[static_cast<std::size_t>(j)])) & 1);
        six = static_cast<std::uint8_t>((six << 1) | bit);
      }
      st.plaintext.assign(1, six);
    };
    inst.num_guesses = 64;
    inst.true_guess = static_cast<unsigned>((subkey >> 42) & 0x3f);
    for (int b = 0; b < 4; ++b)
      inst.selection_bits.push_back(dpa::des_sbox_selection(0, b));
    inst.leakage = dpa::des_sbox_hw_model(0);
    return inst;
  });
}

CircuitTarget dual_rail_pair(double period_ps) {
  return CircuitTarget("dual_rail_pair", [period_ps](std::uint64_t) {
    TargetInstance inst;
    inst.nl = netlist::Netlist("dual_rail_pair");
    gates::Builder b(inst.nl);
    gates::DualRail lo = b.dr_input("lo");
    gates::DualRail hi = b.dr_input("hi");
    for (const gates::DualRail* d : {&lo, &hi}) {
      const netlist::NetId q0 = b.buf(d->r0);
      const netlist::NetId q1 = b.buf(d->r1);
      const gates::DualRail out = b.as_dual_rail(q0, q1, "q");
      b.dr_output(out, "q");
      inst.env.outputs.push_back(out.ch);
    }
    inst.env.inputs = {lo.ch, hi.ch};
    inst.env.period_ps = period_ps;
    inst.stimulus = [](util::Rng&, std::size_t index, Stimulus& st) {
      const int v = static_cast<int>(index % 4);
      st.values.assign({v & 1, (v >> 1) & 1});
      st.plaintext.assign(1, static_cast<std::uint8_t>(v));
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0) & 1, (pt.at(0) >> 1) & 1};
    };
    return inst;
  });
}

CircuitTarget one_of_four(double period_ps) {
  return CircuitTarget("one_of_four", [period_ps](std::uint64_t) {
    TargetInstance inst;
    inst.nl = netlist::Netlist("one_of_four");
    gates::Builder b(inst.nl);
    gates::OneOfN q = b.one_of_n_input("q", 4);
    std::vector<netlist::NetId> out_rails;
    for (netlist::NetId r : q.rails) out_rails.push_back(b.buf(r));
    const netlist::ChannelId out_ch = inst.nl.add_channel("qo", out_rails);
    for (std::size_t i = 0; i < out_rails.size(); ++i)
      b.output(out_rails[i], "qo" + std::to_string(i));
    inst.env.inputs = {q.ch};
    inst.env.outputs = {out_ch};
    inst.env.period_ps = period_ps;
    inst.stimulus = [](util::Rng&, std::size_t index, Stimulus& st) {
      const int v = static_cast<int>(index % 4);
      st.values.assign(1, v);
      st.plaintext.assign(1, static_cast<std::uint8_t>(v));
    };
    inst.golden = [](const std::vector<std::uint8_t>& pt) {
      return std::vector<int>{pt.at(0)};
    };
    return inst;
  });
}

CircuitTarget aes_core(gates::AesCoreParams params) {
  return CircuitTarget("aes_core", [params](std::uint64_t) {
    gates::AesCoreNetlist core = gates::build_aes_core(params);
    TargetInstance inst;
    inst.nl = std::move(core.nl);
    inst.simulatable = false;
    return inst;
  });
}

CircuitTarget prebuilt(TargetInstance inst) {
  auto shared = std::make_shared<const TargetInstance>(std::move(inst));
  return CircuitTarget(shared->name.empty() ? "prebuilt" : shared->name,
                       [shared](std::uint64_t) { return *shared; });
}

CircuitTarget transformed(CircuitTarget base, xform::Recipe recipe) {
  const std::string name = base.name() + "+" + recipe.name;
  auto shared = std::make_shared<const xform::Recipe>(std::move(recipe));
  return CircuitTarget(name, [base = std::move(base),
                              shared](std::uint64_t key) {
    TargetInstance inst = base.build(key);
    shared->pipeline.run(inst.nl);
    return inst;
  });
}

namespace {

/// One table drives both the listing and the lookup, so the two can
/// never drift apart.
struct RegistryEntry {
  const char* name;
  CircuitTarget (*make)();
};

const RegistryEntry kRegistry[] = {
    {"aes_byte_slice", [] { return aes_byte_slice(); }},
    {"des_sbox_slice", [] { return des_sbox_slice(); }},
    {"des_sbox_sync", [] { return des_sbox_sync(); }},
    {"xor_stage", [] { return xor_stage(); }},
    {"des_round", [] { return des_round(); }},
    {"dual_rail_pair", [] { return dual_rail_pair(); }},
    {"one_of_four", [] { return one_of_four(); }},
    {"aes_core", [] { return aes_core(); }},
};

}  // namespace

std::vector<std::string> list_targets() {
  std::vector<std::string> names;
  for (const RegistryEntry& e : kRegistry) names.emplace_back(e.name);
  return names;
}

CircuitTarget find_target(const std::string& name) {
  for (const RegistryEntry& e : kRegistry)
    if (name == e.name) return e.make();
  throw std::invalid_argument("find_target: unknown target '" + name + "'");
}

}  // namespace qdi::campaign
