#include "qdi/sim/simulator.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace qdi::sim {

using netlist::CellId;
using netlist::CellKind;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

Simulator::Simulator(const netlist::Netlist& nl, DelayModel model)
    : nl_(&nl), model_(model) {
  reset_state();
}

void Simulator::reset_state() {
  // assign() and clear() retain capacity: after the first reset no
  // container here ever reallocates, so per-trace epochs are cheap.
  values_.assign(nl_->num_nets(), 0);
  pending_seq_.assign(nl_->num_nets(), 0);
  pending_value_.assign(nl_->num_nets(), 0);
  pending_slew_.assign(nl_->num_nets(), 0.0);
  queue_.clear();
  forces_.clear();
  now_ = 0.0;
  log_.clear();
  glitches_ = 0;
  total_transitions_ = 0;
}

void Simulator::initialize() {
  for (CellId c = 0; c < nl_->num_cells(); ++c) evaluate_cell(c, now_);
}

void Simulator::drive(NetId net, bool value, double at_ps) {
  assert(net < nl_->num_nets());
  assert(nl_->net(net).driver != kNoCell &&
         nl_->cell(nl_->net(net).driver).kind == CellKind::Input &&
         "drive() is only legal on primary-input nets");
  schedule(net, value, at_ps, 0.0);
}

void Simulator::arm_force(NetId net, bool value, double from_ps,
                          double until_ps) {
  if (net >= nl_->num_nets())
    throw std::invalid_argument("Simulator::arm_force: no such net");
  if (from_ps < now_)
    throw std::invalid_argument(
        "Simulator::arm_force: force window starts in the past");
  if (!(until_ps > from_ps))
    throw std::invalid_argument("Simulator::arm_force: empty force window");
  forces_.arm(net, value, from_ps, until_ps);
  // Marker events carry flag bits in seq, bypassing the pending arrays —
  // inertial filtering can neither cancel them nor be confused by them.
  queue_.push(Event{from_ps, kForceMarkerFlag | next_seq_++, net, value});
  if (std::isfinite(until_ps))
    queue_.push(Event{until_ps, kForceMarkerFlag | kForceReleaseBit | next_seq_++,
                      net, value});
}

void Simulator::handle_force_marker(const Event& ev) {
  now_ = ev.t_ps;
  if ((ev.seq & kForceReleaseBit) == 0) {
    NetForce* f = forces_.find(ev.net);
    if (f == nullptr) return;  // force was cleared after arming
    f->active = true;
    // Any in-flight event on the net yields to the force; its value is
    // shadowed first (a drive scheduled before the window opened but
    // landing inside it must still replay at release). The forced edge
    // then schedules (or dedupes) against the committed value.
    if (pending_seq_[ev.net] != 0) {
      f->shadow_valid = true;
      f->shadow_value = pending_value_[ev.net];
      pending_seq_[ev.net] = 0;
    }
    schedule(ev.net, f->value, ev.t_ps, 0.0);
  } else {
    NetForce rec;
    if (!forces_.take(ev.net, rec)) return;
    const CellId driver = nl_->net(ev.net).driver;
    if (driver == kNoCell) return;
    if (nl_->cell(driver).kind == CellKind::Input) {
      // Replay what the environment drove while the force held the net.
      if (rec.shadow_valid) schedule(ev.net, rec.shadow_value, ev.t_ps, 0.0);
    } else {
      // The net recovers its combinational value one gate delay after
      // the release, like a node let go by a probe.
      evaluate_cell(driver, ev.t_ps);
    }
  }
}

void Simulator::schedule(NetId net, bool value, double t_ps, double slew_ps) {
  // An active force suppresses contradicting commits before sequence
  // allocation, so faulty and fault-free runs share the same event
  // numbering up to the injection point in both engines.
  if (!forces_.empty() && forces_.suppress(net, value)) return;
  // Inertial filtering: if a pending event exists, the new evaluation
  // supersedes it. If the new target equals the current steady value and
  // a pending event would have changed it, the pending event was a glitch.
  if (pending_seq_[net] != 0) {
    if (pending_value_[net] == static_cast<char>(value)) return;  // already scheduled
    pending_seq_[net] = 0;  // cancel (lazy: stale seq stays in the heap)
    ++glitches_;
    if (static_cast<char>(value) == values_[net]) return;  // back to steady: nothing to do
  } else if (static_cast<char>(value) == values_[net]) {
    return;  // no change
  }
  const std::uint64_t seq = next_seq_++;
  pending_seq_[net] = seq;
  pending_value_[net] = static_cast<char>(value);
  pending_slew_[net] = slew_ps;
  queue_.push(Event{t_ps, seq, net, value});
}

void Simulator::evaluate_cell(CellId cell, double t_ps) {
  const netlist::Cell& c = nl_->cell(cell);
  if (c.kind == CellKind::Input || c.kind == CellKind::Output) return;
  if (c.output == kNoNet) return;

  // Gather input values (pending events do NOT count: evaluation sees the
  // committed state, like a real gate sees its input voltages).
  bool in_vals[8];
  assert(c.inputs.size() <= 8);
  for (std::size_t i = 0; i < c.inputs.size(); ++i)
    in_vals[i] = values_[c.inputs[i]] != 0;

  const bool prev = values_[c.output] != 0;
  const bool out = netlist::evaluate(
      c.kind, std::span<const bool>(in_vals, c.inputs.size()), prev);

  const double cap = nl_->net(c.output).cap_ff;
  schedule(c.output, out,
           t_ps + model_.delay_ps(c.kind, cap) + c.delay_jitter_ps,
           model_.slew_ps(cap));
}

void Simulator::commit(const Event& ev) {
  values_[ev.net] = static_cast<char>(ev.value);
  now_ = ev.t_ps;
  ++total_transitions_;
  if (sink_ != nullptr || log_enabled_) {
    const Transition tr{ev.t_ps, ev.net, ev.value, nl_->net(ev.net).cap_ff,
                        pending_slew_[ev.net]};
    if (sink_ != nullptr) sink_->on_transition(tr);
    if (log_enabled_) log_.push_back(tr);
  }
  for (const netlist::Pin& p : nl_->net(ev.net).sinks)
    evaluate_cell(p.cell, ev.t_ps);
}

std::size_t Simulator::run_until_stable(std::size_t max_events) {
  std::size_t committed = 0;
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (ev.seq & kForceMarkerFlag) {  // fault-injection start/release
      handle_force_marker(ev);
      continue;
    }
    if (pending_seq_[ev.net] != ev.seq) continue;  // cancelled/stale
    pending_seq_[ev.net] = 0;
    commit(ev);
    if (++committed > max_events)
      throw std::runtime_error(
          "Simulator::run_until_stable: event budget exhausted "
          "(oscillating netlist?)");
  }
  return committed;
}

}  // namespace qdi::sim
