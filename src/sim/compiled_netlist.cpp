#include "qdi/sim/compiled_netlist.hpp"

namespace qdi::sim {

using netlist::CellId;
using netlist::CellKind;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

CompiledNetlist::CompiledNetlist(const netlist::Netlist& nl, DelayModel model)
    : src_(&nl), model_(model) {
  const std::uint32_t nn = static_cast<std::uint32_t>(nl.num_nets());
  const std::uint32_t nc = static_cast<std::uint32_t>(nl.num_cells());

  cap_ff.resize(nn);
  driven_by_input.assign(nn, 0);
  for (NetId n = 0; n < nn; ++n) {
    const netlist::Net& net = nl.net(n);
    cap_ff[n] = net.cap_ff;
    driven_by_input[n] =
        net.driver != kNoCell && nl.cell(net.driver).kind == CellKind::Input;
  }

  kind.resize(nc);
  output.resize(nc);
  delay_ps.resize(nc);
  slew_ps.resize(nc);
  fanin_offset.resize(nc + 1);
  std::uint32_t fanin_total = 0;
  for (CellId c = 0; c < nc; ++c) {
    const netlist::Cell& cell = nl.cell(c);
    kind[c] = cell.kind;
    output[c] = cell.output;
    const double out_cap = cell.output != kNoNet ? cap_ff[cell.output] : 0.0;
    // Per-cell jitter (random-delay-insertion countermeasure) folds into
    // the precomputed delay so the hot loop stays untouched; the
    // reference engine adds the same offset at evaluation time, keeping
    // the two engines bit-identical.
    delay_ps[c] = model_.delay_ps(cell.kind, out_cap) + cell.delay_jitter_ps;
    slew_ps[c] = model_.slew_ps(out_cap);
    fanin_offset[c] = fanin_total;
    fanin_total += static_cast<std::uint32_t>(cell.inputs.size());
  }
  fanin_offset[nc] = fanin_total;
  fanin_net.reserve(fanin_total);
  for (CellId c = 0; c < nc; ++c)
    for (NetId in : nl.cell(c).inputs) fanin_net.push_back(in);

  // Delay range over the cells that actually schedule events (those
  // driving a net); Input/Output pseudo-cells never evaluate.
  bool any_delay = false;
  for (CellId c = 0; c < nc; ++c) {
    if (kind[c] == CellKind::Input || kind[c] == CellKind::Output ||
        output[c] == kNoNet)
      continue;
    if (!any_delay) {
      min_delay_ps_ = max_delay_ps_ = delay_ps[c];
      any_delay = true;
    } else {
      if (delay_ps[c] < min_delay_ps_) min_delay_ps_ = delay_ps[c];
      if (delay_ps[c] > max_delay_ps_) max_delay_ps_ = delay_ps[c];
    }
  }

  fanout_offset.resize(nn + 1);
  std::uint32_t fanout_total = 0;
  for (NetId n = 0; n < nn; ++n) {
    fanout_offset[n] = fanout_total;
    for (const netlist::Pin& p : nl.net(n).sinks)
      if (nl.cell(p.cell).kind != CellKind::Output) ++fanout_total;
  }
  fanout_offset[nn] = fanout_total;
  fanout_cell.reserve(fanout_total);
  for (NetId n = 0; n < nn; ++n)
    for (const netlist::Pin& p : nl.net(n).sinks)
      if (nl.cell(p.cell).kind != CellKind::Output)
        fanout_cell.push_back(p.cell);
}

std::shared_ptr<const CompiledNetlist> compile(const netlist::Netlist& nl,
                                               DelayModel model) {
  return std::make_shared<const CompiledNetlist>(nl, model);
}

}  // namespace qdi::sim
