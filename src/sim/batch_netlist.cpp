#include "qdi/sim/batch_netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "qdi/netlist/cell_kind.hpp"

namespace qdi::sim {

using netlist::CellKind;
using netlist::kNoNet;

namespace {

bool combinational(CellKind k) noexcept {
  return !netlist::is_muller(k) && !netlist::is_pseudo(k);
}

}  // namespace

BatchNetlist::BatchNetlist(std::shared_ptr<const CompiledNetlist> cn)
    : cn_(std::move(cn)) {
  const CompiledNetlist& c = *cn_;
  const std::uint32_t num_cells = c.num_cells();
  const std::uint32_t num_nets = c.num_nets();

  // One driver per net (add_cell enforces it); kNoCell-equivalent is
  // encoded as num_cells.
  std::vector<std::uint32_t> driver(num_nets, num_cells);
  for (std::uint32_t cell = 0; cell < num_cells; ++cell)
    if (c.output[cell] != kNoNet) driver[c.output[cell]] = cell;

  net_slew_ps_.assign(num_nets, 0.0);
  for (std::uint32_t net = 0; net < num_nets; ++net)
    if (!c.driven_by_input[net] && driver[net] != num_cells)
      net_slew_ps_[net] = c.slew_ps[driver[net]];

  // Kahn levelization of the combinational subgraph. Edges run between
  // combinational cells only: Muller latches, environment-driven nets,
  // and undriven nets all count as level-0 cut points.
  level_.assign(num_cells, 0);
  std::vector<std::uint32_t> indegree(num_cells, 0);
  std::vector<std::uint32_t> worklist;
  std::size_t comb_cells = 0;
  for (std::uint32_t cell = 0; cell < num_cells; ++cell) {
    if (!combinational(c.kind[cell])) continue;
    ++comb_cells;
    std::uint32_t deg = 0;
    for (std::uint32_t i = c.fanin_offset[cell]; i < c.fanin_offset[cell + 1];
         ++i) {
      const std::uint32_t d = driver[c.fanin_net[i]];
      if (d != num_cells && combinational(c.kind[d])) ++deg;
    }
    indegree[cell] = deg;
    if (deg == 0) worklist.push_back(cell);
  }

  std::size_t processed = 0;
  while (!worklist.empty()) {
    const std::uint32_t cell = worklist.back();
    worklist.pop_back();
    ++processed;
    std::uint32_t lvl = 0;
    for (std::uint32_t i = c.fanin_offset[cell]; i < c.fanin_offset[cell + 1];
         ++i) {
      const std::uint32_t d = driver[c.fanin_net[i]];
      if (d != num_cells && combinational(c.kind[d]))
        lvl = std::max(lvl, level_[d] + 1);
    }
    level_[cell] = lvl;
    num_levels_ = std::max(num_levels_, lvl + 1);
    const std::uint32_t out = c.output[cell];
    if (out == kNoNet) continue;
    for (std::uint32_t i = c.fanout_offset[out]; i < c.fanout_offset[out + 1];
         ++i) {
      const std::uint32_t sink = c.fanout_cell[i];
      if (combinational(c.kind[sink]) && --indegree[sink] == 0)
        worklist.push_back(sink);
    }
  }

  if (processed != comb_cells) {
    // Name the lowest-id cell stuck on the cycle — deterministic, and
    // the source netlist still carries the human-readable names.
    for (std::uint32_t cell = 0; cell < num_cells; ++cell) {
      if (!combinational(c.kind[cell]) || indegree[cell] == 0) continue;
      const netlist::Cell& src = c.source().cell(cell);
      const std::string net_name = src.output != kNoNet
                                       ? c.source().net(src.output).name
                                       : std::string("<none>");
      throw std::invalid_argument(
          "BatchNetlist: combinational cone cannot be levelized — cell '" +
          src.name + "' (net '" + net_name +
          "') sits on a combinational cycle; the batch engine needs "
          "Muller-latch cut points between cones (use the compiled or "
          "reference engine for this netlist)");
    }
  }
}

std::shared_ptr<const BatchNetlist> compile_batch(const netlist::Netlist& nl,
                                                  DelayModel model) {
  return std::make_shared<const BatchNetlist>(compile(nl, model));
}

std::shared_ptr<const BatchNetlist> compile_batch(
    std::shared_ptr<const CompiledNetlist> cn) {
  return std::make_shared<const BatchNetlist>(std::move(cn));
}

}  // namespace qdi::sim
