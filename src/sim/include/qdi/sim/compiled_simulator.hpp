// CompiledSimulator — the execution kernel of the event-driven
// simulator, running against the flattened SoA CompiledNetlist.
//
// Semantics are identical to the reference `Simulator` (inertial-delay
// filtering, glitch counting, Muller C-element state held through the
// output net, deterministic (time, seq) event ordering); the equivalence
// is asserted bit-for-bit over every registry target in
// tests/test_compiled_sim.cpp. The differences are purely mechanical:
//
//   * gate evaluation reads CSR fanin arrays and an inlined truth-table
//     switch instead of chasing per-cell vectors through cross-TU calls;
//   * per-cell delay and slew come from arrays precomputed at compile
//     time (they depend only on the static output load);
//   * the event queue is a two-level time wheel (calendar queue) by
//     default: events bucket by floor(t_ps / width) with the width
//     derived from the compiled netlist's delay range (4x the minimum
//     gate delay), so push/pop are O(1) amortized instead of the binary
//     heap's O(log n). Fanout scheduled into the tick currently being
//     served (delay < width) is inserted into the sorted ready batch;
//     events whose tick falls beyond one wheel rotation spill into a
//     far-list (a small min-heap) and migrate back as the wheel turns.
//     Pop order is the exact (t_ps, net, seq) total order either way; the
//     heap stays selectable through SchedulerKind for differential
//     testing.
//   * the transition log is OFF by default — acquisition streams power
//     samples through a PowerSink at commit time instead;
//   * reset_state() is a capacity-retaining memset, and save_epoch() /
//     restore_epoch() snapshot the post-reset state. Restoring tracks a
//     dirty set: only nets committed since the last save/restore are
//     reverted, so a steady-state trace epoch costs O(activity), not
//     O(num_nets), and performs zero allocations (all scheduler and
//     dirty-set scratch retains capacity).
//
// Lazily cancelled (inertial-filtered) events stay in the queue as
// tombstones until their pop; when tombstones outnumber live events the
// kernel purges them in place, so pathological retraction patterns
// cannot grow the queue unboundedly.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/engine.hpp"
#include "qdi/sim/transition.hpp"

namespace qdi::sim {

class CompiledSimulator final : public SimEngine {
 public:
  explicit CompiledSimulator(std::shared_ptr<const CompiledNetlist> cn,
                             SchedulerKind scheduler = SchedulerKind::Wheel);

  const CompiledNetlist& compiled() const noexcept { return *cn_; }
  const netlist::Netlist& netlist() const noexcept override {
    return cn_->source();
  }
  SchedulerKind scheduler() const noexcept { return sched_; }

  void reset_state() override;
  void initialize() override;

  bool value(netlist::NetId net) const override {
    assert(net < values_.size());
    return values_[net] != 0;
  }

  void drive(netlist::NetId net, bool value, double at_ps) override;
  std::size_t run_until_stable(std::size_t max_events = 10'000'000) override;

  // ---- fault injection (see force.hpp) -----------------------------------

  void arm_force(netlist::NetId net, bool value, double from_ps,
                 double until_ps) override;
  void clear_forces() override { forces_.clear(); }
  std::size_t armed_forces() const noexcept override { return forces_.size(); }

  double now() const noexcept override { return now_; }
  void advance_to(double t_ps) noexcept override {
    if (t_ps > now_) now_ = t_ps;
  }

  std::size_t glitch_count() const noexcept override { return glitches_; }
  std::size_t transition_count() const noexcept override {
    return total_transitions_;
  }

  /// Pending events still queued (live + tombstones). 0 after
  /// run_until_stable returns.
  std::size_t queue_size() const noexcept { return queue_size_; }
  /// Lazily cancelled events still queued (bounded by queue_size() / 2
  /// plus one purge hysteresis — see the tombstone purge).
  std::size_t tombstone_count() const noexcept { return tombstones_; }

  // ---- streaming power / optional log -----------------------------------

  void set_power_sink(PowerSink* sink) noexcept override { sink_ = sink; }

  /// The transition log is disabled by default in the kernel; enable it
  /// for debugging or log-level equivalence checks.
  void set_log_enabled(bool enabled) override { log_enabled_ = enabled; }
  bool log_enabled() const noexcept override { return log_enabled_; }
  const std::vector<Transition>& log() const noexcept override { return log_; }
  void clear_log() override { log_.clear(); }

  // ---- trace epochs ------------------------------------------------------

  /// Snapshot of a quiescent simulation state (empty event queue). Taken
  /// once after the reset handshake settles; restoring it starts the next
  /// trace epoch from the identical state — and identical absolute time —
  /// without re-simulating reset.
  struct Epoch {
    std::vector<char> values;
    double now = 0.0;
    std::uint64_t next_seq = 1;
    std::size_t glitches = 0;
    std::size_t total_transitions = 0;
    /// Process-unique snapshot identity: lets restore_epoch() prove the
    /// dirty set was accumulated against THIS snapshot and take the
    /// O(activity) revert; any other epoch falls back to a full copy.
    std::uint64_t id = 0;
  };

  /// Snapshot the current state. The event queue must be drained (run
  /// run_until_stable first); a non-empty queue is a hard error in all
  /// build modes — a snapshot with in-flight events would silently
  /// corrupt every epoch restored from it.
  Epoch save_epoch();

  /// Epoch bump: revert to `e` and clear the log. The queue must be
  /// drained and `e` must come from a simulator of identical geometry
  /// (both hard errors in release builds). When `e` is the epoch the
  /// current state diverged from, only the nets committed since then are
  /// reverted — O(activity); restoring a different epoch copies all net
  /// values. No container reallocates either way.
  void restore_epoch(const Epoch& e);

 private:
  struct Event {
    double t_ps;
    std::uint64_t seq;  // tie-break + lazy-deletion token
    netlist::NetId net;
    bool value;
  };

  void schedule(netlist::NetId net, bool value, double t_ps, double slew_ps);
  void evaluate_cell(std::uint32_t cell, double t_ps);
  void commit(const Event& ev);
  void handle_force_marker(const Event& ev);
  void push_event(const Event& ev);
  Event pop_event();

  // -- time-wheel internals --
  std::uint64_t tick_of(double t_ps) const noexcept {
    return static_cast<std::uint64_t>(t_ps * inv_bucket_width_);
  }
  void set_occupied(std::uint64_t bucket) noexcept {
    occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  }
  void clear_occupied(std::uint64_t bucket) noexcept {
    occupied_[bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }
  std::uint64_t find_next_occupied(std::uint64_t start_bucket) const noexcept;
  void bucket_insert(const Event& ev);
  void sort_ready();
  bool fast_refill();
  bool cold_refill();
  void refill_ready();
  void spill_ready();
  void purge_tombstones();
  void clear_queue();
  void mark_dirty(netlist::NetId net);
  void clear_dirty();

  std::shared_ptr<const CompiledNetlist> cn_;
  SchedulerKind sched_;

  std::vector<char> values_;
  std::vector<std::uint64_t> pending_seq_;  // live pending event per net (0 = none)
  std::vector<char> pending_value_;
  std::vector<double> pending_slew_;
  std::uint64_t next_seq_ = 1;
  ForceSet forces_;

  // Heap scheduler: binary min-heap on (t_ps, net, seq); clear() keeps
  // capacity.
  std::vector<Event> heap_;

  // Wheel scheduler. buckets_[tick & mask] holds the events of absolute
  // tick `tick` (and, after the cold backward re-anchor, possibly of
  // later laps — extraction checks the exact tick and swaps the whole
  // bucket in the common single-lap case). ready_ is the sorted batch of
  // the tick being served; overflow_ is a min-heap of events beyond one
  // rotation; occupied_ is a bitmap over buckets so the refill scan
  // skips empty ticks with find-first-set instead of a bucket walk.
  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint64_t> occupied_;
  std::vector<Event> ready_;
  std::size_t ready_pos_ = 0;
  std::vector<Event> overflow_;
  std::uint64_t cur_tick_ = 0;
  std::uint64_t num_buckets_ = 0;
  std::uint64_t bucket_mask_ = 0;
  double inv_bucket_width_ = 1.0;
  std::size_t wheel_count_ = 0;  // events currently in buckets_

  std::size_t queue_size_ = 0;  // all queued events, live + tombstones
  std::size_t tombstones_ = 0;  // lazily cancelled events still queued

  // Dirty-set epoch tracking: nets committed since the state last
  // coincided with epoch `baseline_epoch_` (0 = no baseline).
  std::vector<netlist::NetId> dirty_;
  std::vector<char> dirty_mark_;
  std::uint64_t baseline_epoch_ = 0;

  double now_ = 0.0;
  PowerSink* sink_ = nullptr;
  bool log_enabled_ = false;
  std::vector<Transition> log_;
  std::size_t glitches_ = 0;
  std::size_t total_transitions_ = 0;
};

}  // namespace qdi::sim
