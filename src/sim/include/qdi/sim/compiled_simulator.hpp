// CompiledSimulator — the execution kernel of the event-driven
// simulator, running against the flattened SoA CompiledNetlist.
//
// Semantics are identical to the reference `Simulator` (inertial-delay
// filtering, glitch counting, Muller C-element state held through the
// output net, deterministic (time, seq) event ordering); the equivalence
// is asserted bit-for-bit over every registry target in
// tests/test_compiled_sim.cpp. The differences are purely mechanical:
//
//   * gate evaluation reads CSR fanin arrays and an inlined truth-table
//     switch instead of chasing per-cell vectors through cross-TU calls;
//   * per-cell delay and slew come from arrays precomputed at compile
//     time (they depend only on the static output load);
//   * the transition log is OFF by default — acquisition streams power
//     samples through a PowerSink at commit time instead;
//   * reset_state() is a capacity-retaining memset, and save_epoch() /
//     restore_epoch() snapshot the post-reset state so a trace epoch
//     costs one O(num_nets) copy instead of re-simulating the reset
//     handshake.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "qdi/sim/compiled_netlist.hpp"
#include "qdi/sim/engine.hpp"
#include "qdi/sim/transition.hpp"

namespace qdi::sim {

class CompiledSimulator final : public SimEngine {
 public:
  explicit CompiledSimulator(std::shared_ptr<const CompiledNetlist> cn);

  const CompiledNetlist& compiled() const noexcept { return *cn_; }
  const netlist::Netlist& netlist() const noexcept override {
    return cn_->source();
  }

  void reset_state() override;
  void initialize() override;

  bool value(netlist::NetId net) const override {
    assert(net < values_.size());
    return values_[net] != 0;
  }

  void drive(netlist::NetId net, bool value, double at_ps) override;
  std::size_t run_until_stable(std::size_t max_events = 10'000'000) override;

  double now() const noexcept override { return now_; }
  void advance_to(double t_ps) noexcept override {
    if (t_ps > now_) now_ = t_ps;
  }

  std::size_t glitch_count() const noexcept override { return glitches_; }
  std::size_t transition_count() const noexcept override {
    return total_transitions_;
  }

  // ---- streaming power / optional log -----------------------------------

  void set_power_sink(PowerSink* sink) noexcept override { sink_ = sink; }

  /// The transition log is disabled by default in the kernel; enable it
  /// for debugging or log-level equivalence checks.
  void set_log_enabled(bool enabled) override { log_enabled_ = enabled; }
  bool log_enabled() const noexcept override { return log_enabled_; }
  const std::vector<Transition>& log() const noexcept override { return log_; }
  void clear_log() override { log_.clear(); }

  // ---- trace epochs ------------------------------------------------------

  /// Snapshot of a quiescent simulation state (empty event queue). Taken
  /// once after the reset handshake settles; restoring it starts the next
  /// trace epoch from the identical state — and identical absolute time —
  /// without re-simulating reset.
  struct Epoch {
    std::vector<char> values;
    double now = 0.0;
    std::uint64_t next_seq = 1;
    std::size_t glitches = 0;
    std::size_t total_transitions = 0;
  };

  /// Must be called with the event queue drained (after run_until_stable).
  Epoch save_epoch() const;

  /// O(num_nets) epoch bump: copies net values and counters back, clears
  /// pending state and the log. No container reallocates.
  void restore_epoch(const Epoch& e);

 private:
  struct Event {
    double t_ps;
    std::uint64_t seq;  // tie-break + lazy-deletion token
    netlist::NetId net;
    bool value;
  };

  void schedule(netlist::NetId net, bool value, double t_ps, double slew_ps);
  void evaluate_cell(std::uint32_t cell, double t_ps);
  void commit(const Event& ev);
  void push_event(const Event& ev);
  Event pop_event();

  std::shared_ptr<const CompiledNetlist> cn_;

  std::vector<char> values_;
  std::vector<std::uint64_t> pending_seq_;  // live pending event per net (0 = none)
  std::vector<char> pending_value_;
  std::vector<double> pending_slew_;
  std::vector<Event> heap_;  // binary min-heap on (t_ps, seq); clear() keeps capacity
  std::uint64_t next_seq_ = 1;

  double now_ = 0.0;
  PowerSink* sink_ = nullptr;
  bool log_enabled_ = false;
  std::vector<Transition> log_;
  std::size_t glitches_ = 0;
  std::size_t total_transitions_ = 0;
};

}  // namespace qdi::sim
