// BatchSimulator — the bit-parallel third engine: 64 traces per machine
// word.
//
// 64 independent simulations of the SAME netlist advance in lockstep.
// Net state is word-packed (bit l of a net's word is lane l's value), so
// one gate evaluation is a handful of bitwise ops serving all 64 lanes
// (AND/OR/NOT and the Muller majority-with-hold as word formulas). The
// four-phase handshake skeleton stays event-driven: a shared min-queue
// of merged (t, net) keys replaces 64 scalar queues, and a per-lane
// pending mask lets lanes that stall, diverge, or finish early drop out
// of a word without perturbing the others.
//
// Exactness contract — the reason this engine can exist at all:
// every engine orders events by the canonical (t_ps, net, seq) total
// order, and at most one LIVE event exists per (lane, net, time)
// (delays are strictly positive, one pending per net). So for each
// lane, popping merged (t, net) keys in (t, net) order replays exactly
// the scalar pop order of that lane's events — commit times, values,
// glitch (retraction) counts, transition counts, and the floating-point
// accumulation order of every power sample are bit-identical to the
// wheel/heap CompiledSimulator and the reference interpreter
// (tests/test_batch_sim.cpp, tests/test_property_fuzz.cpp).
//
// Scope: acquisition only. Forces/fault injection and transition logs
// are scalar-engine features; Campaign::engine(Batch) guards the
// unsupported combinations with explicit errors instead of falling
// back.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "qdi/sim/batch_netlist.hpp"
#include "qdi/sim/environment.hpp"

namespace qdi::sim {

inline constexpr std::size_t kBatchLanes = 64;

/// Streaming power sink of the batch kernel: one callback per merged
/// (t, net) commit. `live` marks the lanes that committed, `rising`
/// (a subset of live) the lanes whose new value is 1. Per-lane slew is
/// not needed — slew is static per net (see BatchNetlist).
class BatchPowerSink {
 public:
  virtual ~BatchPowerSink() = default;
  virtual void on_batch_transition(double t_ps, std::uint32_t net,
                                   std::uint64_t live, std::uint64_t rising,
                                   double slew_ps) = 0;
};

class BatchSimulator {
 public:
  explicit BatchSimulator(std::shared_ptr<const BatchNetlist> bn);

  const BatchNetlist& batch_netlist() const noexcept { return *bn_; }
  const netlist::Netlist& netlist() const noexcept {
    return bn_->compiled().source();
  }

  /// All-lane return to the power-on state (t = 0, all nets low).
  void reset_state();

  /// Evaluate every cell once against the current values in cell-id
  /// order, as SimEngine::initialize() does per lane. Lane `now` must be
  /// uniform (it is at reset / after apply_reset).
  void initialize(std::uint64_t mask);

  bool value(netlist::NetId net, std::size_t lane) const {
    return (cur_[net] >> lane) & 1u;
  }
  std::uint64_t value_word(netlist::NetId net) const { return cur_[net]; }

  /// Drive a primary-input net in every lane of `mask` at `at_ps`.
  void drive(netlist::NetId net, bool value, double at_ps,
             std::uint64_t mask);

  /// Drain the merged event queue. The budget counts merged commits (a
  /// merged commit serves up to 64 lanes); an oscillating lane still
  /// exhausts it. Returns the merged commit count.
  std::size_t run_until_stable(std::size_t max_events = 10'000'000);

  double now(std::size_t lane) const { return now_[lane]; }
  void advance_to(double t_ps, std::uint64_t mask);

  std::size_t glitch_count(std::size_t lane) const {
    return glitches_[lane];
  }
  std::size_t transition_count(std::size_t lane) const {
    return transitions_[lane];
  }

  void set_power_sink(BatchPowerSink* sink) noexcept { sink_ = sink; }

  bool queue_empty() const noexcept { return queue_size_ == 0; }

  /// Post-reset snapshot, shared by all lanes (save requires a drained
  /// queue and lane-uniform state — which apply_reset guarantees).
  /// restore broadcasts it into every lane: one word per net, so a
  /// 64-trace block pays O(nets), not O(64 x activity).
  struct Epoch {
    std::vector<char> values;
    double now = 0.0;
    std::size_t glitches = 0;
    std::size_t transitions = 0;
  };
  Epoch save_epoch() const;
  void restore_epoch(const Epoch& e);

  /// Lane-occupancy statistics since construction: how many lanes the
  /// average merged commit served. 64.0 = perfect lockstep, 1.0 = the
  /// lanes fully diverged (batch degenerates to scalar cost).
  std::uint64_t merged_commits() const noexcept { return merged_commits_; }
  double mean_lane_occupancy() const noexcept {
    return merged_commits_ > 0 ? static_cast<double>(lane_commits_) /
                                     static_cast<double>(merged_commits_)
                               : 0.0;
  }

 private:
  struct HeapEvent {
    double t_ps;
    std::uint32_t net;
  };
  // Merged-queue order: earliest (t, net) pops first — the projection of
  // the engines' canonical (t_ps, net, seq) order onto live events.
  // Functors (not function pointers) so the sorts inline them.
  struct Earlier {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const noexcept {
      if (a.t_ps != b.t_ps) return a.t_ps < b.t_ps;
      return a.net < b.net;
    }
  };
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const noexcept {
      if (a.t_ps != b.t_ps) return a.t_ps > b.t_ps;
      return a.net > b.net;
    }
  };

  void push_key(double t_ps, std::uint32_t net);
  void schedule_word(std::uint32_t net, std::uint64_t want, std::uint64_t mask,
                     double t_ps);
  void evaluate_cell(std::uint32_t cell, double t_ps, std::uint64_t mask);
  void commit(double t_ps, std::uint32_t net, std::uint64_t live);

  std::shared_ptr<const BatchNetlist> bn_;
  const CompiledNetlist* cn_;

  // Word-packed per-net state: lane l's value is bit l. Committed values
  // stay in their own dense array — the gate-evaluation word loops read
  // nothing else, and 8 bytes per net keeps their footprint minimal.
  std::vector<std::uint64_t> cur_;  // committed values
  struct PendGroup {
    double t_ps;
    std::uint64_t mask;
  };
  // Pending lanes of a net, grouped by scheduled time: lanes in lockstep
  // share one group, so a net almost always holds at most one. The group
  // is the lazy-cancellation token — a popped (t, net) key commits
  // exactly the group whose time equals t (a missing group is a
  // tombstone) — and the dedup unit: a heap key is pushed only when a
  // group is born. The first group lives inline (g0_t/g0_mask, mask == 0
  // when vacant); additional simultaneous times spill into spill_[net],
  // and `mask & ~g0_mask != 0` is the cheap "spill is non-empty" test
  // (the groups of a net partition its pending lanes).
  //
  // The four pending words of a net share one 32-byte slot: the event
  // hot path (pop, commit, schedule) is bound by scattered per-net
  // loads, and the 32-byte alignment pins each slot inside a single
  // cache line — one line touched per net instead of the four that
  // parallel arrays would spread the same state across.
  struct alignas(32) PendState {
    std::uint64_t mask = 0;     // lanes with a live pending event
    std::uint64_t value = 0;    // pending values of those lanes
    double g0_t = 0.0;          // inline group: scheduled time...
    std::uint64_t g0_mask = 0;  // ...and its lanes (0 = vacant)
  };
  std::vector<PendState> pend_;
  std::vector<std::vector<PendGroup>> spill_;

  // Two-level calendar queue over merged (t, net) keys — the batch twin
  // of the scalar engine's time wheel (compiled_simulator.hpp): buckets
  // of one tick (bucket width 4x the smallest gate delay), an occupancy
  // bitmap for the next-tick scan, a sorted ready batch serving the
  // current tick, and a far-list min-heap for keys beyond one rotation.
  // Pop order is exactly (t, net); keys the serve of a tick births into
  // its own tick keep the ready batch sorted via bounded insertion.
  std::vector<std::vector<HeapEvent>> buckets_;
  std::vector<std::uint64_t> occupied_;
  std::vector<HeapEvent> ready_;
  std::size_t ready_pos_ = 0;
  std::vector<HeapEvent> overflow_;
  std::uint64_t cur_tick_ = 0;
  std::uint64_t num_buckets_ = 0;
  std::uint64_t bucket_mask_ = 0;
  std::uint64_t wheel_count_ = 0;
  double inv_bucket_width_ = 1.0;
  std::size_t queue_size_ = 0;

  std::uint64_t tick_of(double t_ps) const noexcept {
    return static_cast<std::uint64_t>(t_ps * inv_bucket_width_);
  }
  void set_occupied(std::uint64_t b) noexcept {
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }
  void clear_occupied(std::uint64_t b) noexcept {
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }
  std::uint64_t find_next_occupied(std::uint64_t start_bucket) const noexcept;
  void bucket_insert(const HeapEvent& ev);
  void spill_ready();
  void sort_ready();
  bool fast_refill();
  bool cold_refill();
  void refill_ready();
  void clear_queue();

  double now_[kBatchLanes] = {};
  std::size_t glitches_[kBatchLanes] = {};
  std::size_t transitions_[kBatchLanes] = {};

  BatchPowerSink* sink_ = nullptr;
  std::uint64_t merged_commits_ = 0;
  std::uint64_t lane_commits_ = 0;
};

/// Four-phase handshake environment over the batch kernel: the exact
/// per-lane replica of sim::FourPhaseEnv::send_into, with drives grouped
/// into masked words and the four run_until_stable barriers shared (the
/// lanes are independent, so a global drain preserves each lane's event
/// subsequence). Strict-mode only — acquisition is its sole client; a
/// protocol failure or period overrun in ANY lane throws.
class BatchFourPhaseEnv {
 public:
  BatchFourPhaseEnv(BatchSimulator& sim, EnvSpec spec);

  /// Reset handshake across all 64 lanes (they are identical during
  /// reset, so this runs once per worker, then save_epoch snapshots it).
  void apply_reset(double pulse_ps = 200.0);

  double next_cycle_start(std::size_t lane) const noexcept {
    return std::ceil((sim_->now(lane) + 1e-9) / spec_.period_ps) *
           spec_.period_ps;
  }

  struct BatchCycleResult {
    double t_start[kBatchLanes] = {};
    double t_valid[kBatchLanes] = {};
    double t_empty[kBatchLanes] = {};
    double t_end[kBatchLanes] = {};
    std::size_t transitions[kBatchLanes] = {};
    /// Decoded output channel values, lane-major:
    /// outputs[lane * num_outputs + i].
    std::vector<int> outputs;
    std::size_t num_outputs = 0;
    std::size_t lanes = 0;
  };

  /// One four-phase cycle in lanes [0, values.size());
  /// values[l] points at lane l's per-input-channel stimulus.
  void send_into(std::span<const std::vector<int>* const> values,
                 BatchCycleResult& res);

 private:
  int read_channel(netlist::ChannelId ch, std::size_t lane) const;
  /// Masked drive with a per-lane time array: lanes of `mask` sharing
  /// the same time are driven as one word.
  void drive_grouped(netlist::NetId net, bool value, const double* t_ps,
                     std::uint64_t mask);

  BatchSimulator* sim_;
  EnvSpec spec_;
};

}  // namespace qdi::sim
