// Gate timing model. Eq. 12 of the paper hinges on Δt — "the physical
// time taken by the gate to charge/discharge its output node. This time
// depends on the value of C." We therefore use the simplest model in
// which that dependence is first-class:
//
//   propagation delay  d(C)  = base + per_input·arity + per_ff·C
//   charge time        Δt(C) = slew_base + slew_per_ff·C
//
// Defaults are loosely calibrated to a 0.13 µm standard-cell library
// (tens of ps intrinsic delay, a few ps per fF of load) — absolute values
// are irrelevant to the reproduction, the C-dependence is what matters.
#pragma once

#include "qdi/netlist/cell_kind.hpp"

namespace qdi::sim {

struct DelayModel {
  double base_ps = 20.0;       ///< intrinsic gate delay
  double per_input_ps = 3.0;   ///< stack-depth penalty per input pin
  double per_ff_ps = 4.0;      ///< delay slope vs output load (ps/fF)
  double slew_base_ps = 10.0;  ///< minimum charge/discharge time
  double slew_per_ff_ps = 5.0; ///< Δt slope vs output load (ps/fF)

  /// Propagation delay of a gate of `kind` driving `cap_ff` femtofarads.
  double delay_ps(netlist::CellKind kind, double cap_ff) const noexcept {
    return base_ps + per_input_ps * netlist::info(kind).num_inputs +
           per_ff_ps * cap_ff;
  }

  /// Output transition (charge/discharge) time Δt for load `cap_ff`.
  double slew_ps(double cap_ff) const noexcept {
    return slew_base_ps + slew_per_ff_ps * cap_ff;
  }

  /// A zero-load-sensitivity model (ablation: with per_ff = slew_per_ff
  /// = 0 the capacitive leakage channel through *timing* disappears and
  /// only the charge term of eq. 12 remains).
  static DelayModel load_insensitive() noexcept {
    DelayModel m;
    m.per_ff_ps = 0.0;
    m.slew_per_ff_ps = 0.0;
    return m;
  }
};

}  // namespace qdi::sim
