// BatchNetlist — the batch-compile step in front of sim::BatchSimulator.
//
// The 64-lane kernel shares one CompiledNetlist across all lanes and
// relies on two structural facts that scalar simulation never needed
// spelled out:
//
//   * every combinational cone between handshake latches levelizes —
//     i.e. the subgraph of non-Muller gates is acyclic. Muller
//     C-elements (the QDI latches) and environment-driven nets are the
//     cut points at level 0; each combinational cell gets the
//     topological depth of its cone. A cone that cannot be levelized
//     (e.g. a cross-coupled NAND latch smuggled in as "combinational"
//     cells) would make word-parallel evaluation order-sensitive, so
//     batch compilation REFUSES it with an error naming the offending
//     cell and net rather than silently falling back to scalar runs;
//   * per-net slew is static: a net has exactly one driver, and the
//     per-cell slew depends only on the cell kind and its static output
//     load, so the batch kernel can look slew up per net instead of
//     carrying per-lane pending-slew state. Environment-driven nets use
//     slew 0, exactly like SimEngine::drive().
//
// A BatchNetlist is immutable after construction and shared read-only
// by all batch workers, like the CompiledNetlist it wraps.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "qdi/sim/compiled_netlist.hpp"

namespace qdi::sim {

class BatchNetlist {
 public:
  /// Validates and annotates `cn`. Throws std::invalid_argument (naming
  /// the cell and its output net) when a combinational cone cannot be
  /// levelized.
  explicit BatchNetlist(std::shared_ptr<const CompiledNetlist> cn);

  const CompiledNetlist& compiled() const noexcept { return *cn_; }
  const std::shared_ptr<const CompiledNetlist>& compiled_ptr() const noexcept {
    return cn_;
  }

  /// Topological depth per cell inside its combinational cone. Muller
  /// cells and pseudo-cells are cut points at level 0; a combinational
  /// cell is 1 + max(level of its combinational fanin drivers).
  const std::vector<std::uint32_t>& level() const noexcept { return level_; }
  std::uint32_t num_levels() const noexcept { return num_levels_; }

  /// Static slew per net: 0 for environment-driven nets, the driver
  /// cell's precomputed slew otherwise.
  const std::vector<double>& net_slew_ps() const noexcept {
    return net_slew_ps_;
  }

 private:
  std::shared_ptr<const CompiledNetlist> cn_;
  std::vector<std::uint32_t> level_;
  std::uint32_t num_levels_ = 0;
  std::vector<double> net_slew_ps_;
};

/// Compile `nl` for the batch kernel (netlist -> CompiledNetlist ->
/// BatchNetlist). The shared_ptr is what BatchSimTraceSource clones
/// hand to their per-worker kernels.
std::shared_ptr<const BatchNetlist> compile_batch(const netlist::Netlist& nl,
                                                  DelayModel model = {});

/// Wrap an already-compiled netlist (shares it instead of recompiling).
std::shared_ptr<const BatchNetlist> compile_batch(
    std::shared_ptr<const CompiledNetlist> cn);

}  // namespace qdi::sim
