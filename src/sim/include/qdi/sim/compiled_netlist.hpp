// CompiledNetlist — the execution representation of a netlist.
//
// The construction-oriented netlist::Netlist is built for incremental
// assembly and inspection: per-net std::string names, per-net
// std::vector<Pin> sink lists, per-cell std::vector<NetId> inputs. The
// event loop chases all of those pointers on every committed event.
//
// Compilation flattens the graph once into structure-of-arrays form:
//
//   * CSR fanout  (net  -> sink cells, Output pseudo-cells dropped),
//   * CSR fanin   (cell -> input nets),
//   * dense per-net capacitance,
//   * per-cell delay/slew precomputed from the DelayModel (both depend
//     only on the cell kind and its static output load),
//   * compact CellKind codes — no strings anywhere.
//
// A CompiledNetlist is immutable after construction and is shared
// read-only by all acquisition workers (see sim::compile). It must
// outlive every CompiledSimulator running on it, and the source Netlist
// must not be mutated while compiled simulations run — recompile after
// annotating capacitances.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/delay_model.hpp"

namespace qdi::sim {

class CompiledNetlist {
 public:
  explicit CompiledNetlist(const netlist::Netlist& nl, DelayModel model = {});

  const netlist::Netlist& source() const noexcept { return *src_; }
  const DelayModel& delay_model() const noexcept { return model_; }

  std::uint32_t num_nets() const noexcept {
    return static_cast<std::uint32_t>(cap_ff.size());
  }
  std::uint32_t num_cells() const noexcept {
    return static_cast<std::uint32_t>(kind.size());
  }

  /// Precomputed range of the per-cell propagation delays (over cells
  /// that drive a net; 0/0 when there are none). The time-wheel
  /// scheduler derives its bucket geometry from this range: a bucket
  /// width of min_delay_ps guarantees every event a commit schedules
  /// lands in a strictly later bucket, and max_delay_ps bounds how far
  /// ahead of `now` gate activity can reach.
  double min_delay_ps() const noexcept { return min_delay_ps_; }
  double max_delay_ps() const noexcept { return max_delay_ps_; }

  // All arrays below are filled by the constructor and immutable
  // afterwards (exposed directly: this is a kernel data structure, not
  // an abstraction boundary).

  // ---- per-net ----------------------------------------------------------
  std::vector<double> cap_ff;            ///< net load capacitance
  std::vector<char> driven_by_input;     ///< 1 if driver is an Input pseudo-cell
  std::vector<std::uint32_t> fanout_offset;  ///< size num_nets + 1
  /// CSR payload: sink cell per pin, in pin registration order (a cell
  /// listening on one net through two pins appears twice, exactly like
  /// the reference sink walk). Output pseudo-cells are dropped — their
  /// evaluation is a no-op by definition.
  std::vector<std::uint32_t> fanout_cell;

  // ---- per-cell ---------------------------------------------------------
  std::vector<netlist::CellKind> kind;
  std::vector<std::uint32_t> output;     ///< driven net, kNoNet when none
  std::vector<double> delay_ps;  ///< DelayModel::delay_ps(kind, C_out) + cell jitter
  std::vector<double> slew_ps;           ///< DelayModel::slew_ps(C_out)
  std::vector<std::uint32_t> fanin_offset;   ///< size num_cells + 1
  std::vector<std::uint32_t> fanin_net;      ///< CSR payload: input nets in pin order

 private:
  const netlist::Netlist* src_;
  DelayModel model_;
  double min_delay_ps_ = 0.0;
  double max_delay_ps_ = 0.0;
};

/// Compile `nl` for sharing across acquisition workers. The shared_ptr
/// is what SimTraceSource clones hand to their per-worker kernels.
std::shared_ptr<const CompiledNetlist> compile(const netlist::Netlist& nl,
                                               DelayModel model = {});

}  // namespace qdi::sim
