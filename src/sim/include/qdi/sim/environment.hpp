// Four-phase handshake test environment (fig. 2 of the paper):
//   Phase 1 — environment drives valid data on the input channels,
//   Phase 2 — downstream acknowledge is asserted,
//   Phase 3 — inputs return to zero (invalid),
//   Phase 4 — acknowledge is released.
//
// The environment plays both the producer (drives input rails) and the
// consumer (asserts the block's downstream-ack inputs after observing
// valid outputs). Cycles are aligned on a fixed period so that power
// traces from different codewords are sample-aligned for DPA.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/engine.hpp"

namespace qdi::sim {

struct EnvSpec {
  std::vector<netlist::ChannelId> inputs;   ///< env-driven channels
  std::vector<netlist::ChannelId> outputs;  ///< observed channels
  /// Ack inputs of the block that the environment drives as the consumer
  /// (asserted in phase 2, released in phase 4).
  std::vector<netlist::NetId> acks_to_block;
  netlist::NetId reset = netlist::kNoNet;  ///< active-high reset input
  double period_ps = 4000.0;  ///< cycle period (trace window length)
  double phase_gap_ps = 50.0; ///< idle gap the env waits before each phase
};

/// Drives any SimEngine (the reference Simulator or the compiled kernel)
/// through four-phase cycles; the engine choice never changes the
/// environment's behaviour.
class FourPhaseEnv {
 public:
  FourPhaseEnv(SimEngine& sim, EnvSpec spec);

  const EnvSpec& spec() const noexcept { return spec_; }

  /// Start time of the next cycle: the period-grid point send() will
  /// align on. Exposed so streaming acquisition can open its power
  /// window before the cycle runs.
  double next_cycle_start() const noexcept {
    return std::ceil((sim_->now() + 1e-9) / spec_.period_ps) * spec_.period_ps;
  }

  /// Pulse reset: assert, settle, release, settle. Leaves the block empty.
  void apply_reset(double pulse_ps = 200.0);

  struct CycleResult {
    double t_start = 0.0;  ///< aligned cycle start
    double t_valid = 0.0;  ///< all outputs valid (end of phase 1)
    double t_empty = 0.0;  ///< all outputs returned to zero (end of phase 3)
    double t_end = 0.0;    ///< end of phase 4
    std::vector<int> outputs;       ///< decoded output values
    std::size_t transitions = 0;    ///< net transitions in the whole cycle
    bool ok = false;                ///< protocol completed correctly
  };

  /// Run one full four-phase cycle transmitting values[i] on input
  /// channel i (values are 1-of-N indices). Throws std::runtime_error if
  /// the cycle does not fit in the period.
  CycleResult send(std::span<const int> values);

  /// send() into a caller-owned result, reusing its `outputs` capacity —
  /// the allocation-free form the acquisition hot loop runs (one
  /// CycleResult per worker, reused across traces).
  void send_into(std::span<const int> values, CycleResult& out);

  /// Decoded value of a channel: the index of its single high rail, -1 if
  /// the channel is invalid (no rail or several rails high).
  int read_channel(netlist::ChannelId ch) const;
  bool outputs_valid() const;
  bool outputs_empty() const;

 private:
  void drive_acks(bool value, double at_ps);

  SimEngine* sim_;
  EnvSpec spec_;
};

}  // namespace qdi::sim
