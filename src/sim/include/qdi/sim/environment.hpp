// Four-phase handshake test environment (fig. 2 of the paper):
//   Phase 1 — environment drives valid data on the input channels,
//   Phase 2 — downstream acknowledge is asserted,
//   Phase 3 — inputs return to zero (invalid),
//   Phase 4 — acknowledge is released.
//
// The environment plays both the producer (drives input rails) and the
// consumer (asserts the block's downstream-ack inputs after observing
// valid outputs). Cycles are aligned on a fixed period so that power
// traces from different codewords are sample-aligned for DPA.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/engine.hpp"

namespace qdi::sim {

struct EnvSpec {
  std::vector<netlist::ChannelId> inputs;   ///< env-driven channels
  std::vector<netlist::ChannelId> outputs;  ///< observed channels
  /// Ack inputs of the block that the environment drives as the consumer
  /// (asserted in phase 2, released in phase 4).
  std::vector<netlist::NetId> acks_to_block;
  netlist::NetId reset = netlist::kNoNet;  ///< active-high reset input
  double period_ps = 4000.0;  ///< cycle period (trace window length)
  double phase_gap_ps = 50.0; ///< idle gap the env waits before each phase
  /// Tester time grid for the ack/return-to-zero phase drives: when > 0,
  /// each phase 2/3/4 drive time is rounded UP to the next multiple of
  /// this grid (a real tester toggles pins on a clock, not at the DUT's
  /// exact completion instant). 0 keeps the exact now + phase_gap_ps
  /// times. Besides realism, a grid makes traces with different data
  /// reach the later phases at the SAME absolute times — which is what
  /// lets the batch engine keep its 64 lanes in lockstep through the
  /// return-to-zero wavefront instead of diverging per lane.
  double phase_align_ps = 0.0;
  /// Strict mode (default) logs a warning on a stalled handshake and
  /// throws when a cycle overruns the period — right for fault-free
  /// acquisition, where either is a harness bug. Fault campaigns run
  /// tolerant (strict = false): stalls and overruns are expected outcomes
  /// of an injection and are reported through CycleResult::handshake
  /// without noise or unwinding.
  bool strict = true;
};

/// Where a four-phase cycle stalled (first phase that failed to complete).
enum class HandshakePhase : std::uint8_t {
  None,          ///< no stall
  DataValid,     ///< outputs never became valid after data was driven
  Ack,           ///< (reserved — ack assertion cannot stall in this env)
  ReturnToZero,  ///< outputs never emptied after inputs returned to zero
  AckRelease,    ///< (reserved — ack release cannot stall in this env)
};

inline const char* name(HandshakePhase p) noexcept {
  switch (p) {
    case HandshakePhase::None: return "none";
    case HandshakePhase::DataValid: return "data-valid";
    case HandshakePhase::Ack: return "ack";
    case HandshakePhase::ReturnToZero: return "return-to-zero";
    case HandshakePhase::AckRelease: return "ack-release";
  }
  return "?";
}

/// Outcome of one four-phase handshake cycle. A QDI block hit by a fault
/// does not produce a wrong answer and move on — it *stalls* (the
/// completion tree waits forever for a rail that cannot rise); this
/// struct is the observable form of that deadlock, and the primitive the
/// fault classifier is built on.
struct HandshakeOutcome {
  bool completed = false;  ///< all four phases ran to completion
  HandshakePhase stalled_phase = HandshakePhase::None;
  /// First output channel that was invalid (DataValid stall) or still
  /// occupied (ReturnToZero stall); Netlist::kNoChannel when not a
  /// channel-attributable stall.
  netlist::ChannelId stalling_channel = netlist::Netlist::kNoChannel;
  /// The handshake finished but took >= period_ps (tolerant mode only;
  /// strict mode throws instead).
  bool period_overrun = false;
};

/// Drives any SimEngine (the reference Simulator or the compiled kernel)
/// through four-phase cycles; the engine choice never changes the
/// environment's behaviour.
class FourPhaseEnv {
 public:
  FourPhaseEnv(SimEngine& sim, EnvSpec spec);

  const EnvSpec& spec() const noexcept { return spec_; }

  /// Start time of the next cycle: the period-grid point send() will
  /// align on. Exposed so streaming acquisition can open its power
  /// window before the cycle runs.
  double next_cycle_start() const noexcept {
    return std::ceil((sim_->now() + 1e-9) / spec_.period_ps) * spec_.period_ps;
  }

  /// Pulse reset: assert, settle, release, settle. Leaves the block empty.
  void apply_reset(double pulse_ps = 200.0);

  struct CycleResult {
    double t_start = 0.0;  ///< aligned cycle start
    double t_valid = 0.0;  ///< all outputs valid (end of phase 1)
    double t_empty = 0.0;  ///< all outputs returned to zero (end of phase 3)
    double t_end = 0.0;    ///< end of phase 4
    std::vector<int> outputs;       ///< decoded output values
    std::size_t transitions = 0;    ///< net transitions in the whole cycle
    bool ok = false;                ///< protocol completed correctly
    HandshakeOutcome handshake;     ///< where (and whether) the cycle stalled
  };

  /// Run one full four-phase cycle transmitting values[i] on input
  /// channel i (values are 1-of-N indices). Throws std::runtime_error if
  /// the cycle does not fit in the period.
  CycleResult send(std::span<const int> values);

  /// send() into a caller-owned result, reusing its `outputs` capacity —
  /// the allocation-free form the acquisition hot loop runs (one
  /// CycleResult per worker, reused across traces).
  void send_into(std::span<const int> values, CycleResult& out);

  /// Decoded value of a channel: the index of its single high rail, -1 if
  /// the channel is invalid (no rail or several rails high).
  int read_channel(netlist::ChannelId ch) const;
  bool outputs_valid() const;
  bool outputs_empty() const;

 private:
  void drive_acks(bool value, double at_ps);
  netlist::ChannelId first_invalid_output() const;
  netlist::ChannelId first_occupied_output() const;

  SimEngine* sim_;
  EnvSpec spec_;
};

}  // namespace qdi::sim
