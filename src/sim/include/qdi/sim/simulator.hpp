// Event-driven gate-level simulator for QDI netlists — the *reference*
// engine, interpreting the construction-oriented netlist::Netlist
// directly. The compiled kernel (compiled_simulator.hpp) reproduces its
// semantics bit-for-bit against the flattened execution form; this class
// stays as the readable specification and equivalence oracle.
//
// Inertial-delay semantics: each net has at most one pending event; a
// re-evaluation that contradicts a pending event cancels it (the would-be
// glitch is counted — QDI circuits are hazard-free, so a non-zero glitch
// count on a QDI block is a design bug and tests assert it stays zero).
//
// Muller C-elements hold state through their current output net value;
// reset pins are ordinary inputs (the qdi generators wire them to a reset
// net driven by the environment).
//
// Every committed transition is appended to the transition log together
// with the switched net's capacitance — exactly the (C, Δt, t) triples the
// power model of section III needs. The log can be disabled and a
// streaming PowerSink attached instead (see transition.hpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/delay_model.hpp"
#include "qdi/sim/engine.hpp"
#include "qdi/sim/transition.hpp"

namespace qdi::sim {

class Simulator final : public SimEngine {
 public:
  explicit Simulator(const netlist::Netlist& nl, DelayModel model = {});

  const netlist::Netlist& netlist() const noexcept override { return *nl_; }
  const DelayModel& delay_model() const noexcept { return model_; }

  /// Forget all state: all nets low, time zero, logs cleared. Containers
  /// retain their capacity — no reallocation after the first call.
  void reset_state() override;

  /// Evaluate every gate once at the current time so that combinational
  /// outputs inconsistent with the all-zero state (e.g. inverters) settle.
  /// Call once after reset_state()/drive() of initial input values, then
  /// run_until_stable().
  void initialize() override;

  bool value(netlist::NetId net) const override {
    assert(net < values_.size());
    return values_[net] != 0;
  }

  /// Fresh simulator against the same netlist and delay model — the cheap
  /// per-worker copy path of the parallel acquisition pool. The netlist is
  /// shared (const), all per-run state starts from reset.
  Simulator clone() const { return Simulator(*nl_, model_); }

  /// Externally drive a net (must be the output of an Input pseudo-cell).
  /// The change commits at `at_ps` with zero slew attributed to the
  /// environment (environment transitions carry the net's cap so input
  /// wire loading is still modeled).
  void drive(netlist::NetId net, bool value, double at_ps) override;

  /// Process events until the queue drains. Returns the number of
  /// committed transitions. Throws std::runtime_error after `max_events`
  /// commits (runaway oscillation — a ring would otherwise hang).
  std::size_t run_until_stable(std::size_t max_events = 10'000'000) override;

  // ---- fault injection (see force.hpp) -----------------------------------

  void arm_force(netlist::NetId net, bool value, double from_ps,
                 double until_ps) override;
  void clear_forces() override { forces_.clear(); }
  std::size_t armed_forces() const noexcept override { return forces_.size(); }

  /// Current simulation time = commit time of the latest event.
  double now() const noexcept override { return now_; }
  /// Move the clock forward (idle gap between handshake phases).
  void advance_to(double t_ps) noexcept override {
    if (t_ps > now_) now_ = t_ps;
  }

  void set_power_sink(PowerSink* sink) noexcept override { sink_ = sink; }

  /// The transition log is ON by default here (the reference engine is
  /// the inspectable one); disable it when only streaming power is needed.
  void set_log_enabled(bool enabled) override { log_enabled_ = enabled; }
  bool log_enabled() const noexcept override { return log_enabled_; }
  const std::vector<Transition>& log() const noexcept override { return log_; }
  void clear_log() override { log_.clear(); }

  /// Count of cancelled pending events (potential glitches). Zero on any
  /// hazard-free QDI block.
  std::size_t glitch_count() const noexcept override { return glitches_; }

  /// Total committed transitions since reset.
  std::size_t transition_count() const noexcept override {
    return total_transitions_;
  }

 private:
  struct Event {
    double t_ps;
    std::uint64_t seq;  // tie-break + lazy-deletion token
    netlist::NetId net;
    bool value;
  };
  // Canonical (t_ps, net, seq) total order shared by every engine. The
  // net tie-break (rather than raw insertion order) is what lets the
  // batch engine key its merged 64-lane queue on (t, net) and still
  // replay each lane's commit/glitch/power stream bit-identically —
  // see sim/batch_simulator.hpp. At most one *live* event exists per
  // (t, net) (delays are strictly positive; one pending per net), so
  // the seq component only orders tombstones and force markers.
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t_ps != b.t_ps) return a.t_ps > b.t_ps;
      if (a.net != b.net) return a.net > b.net;
      return a.seq > b.seq;
    }
  };
  /// priority_queue with a capacity-retaining clear() (the underlying
  /// container is protected, not private — this is the sanctioned way in).
  struct EventQueue : std::priority_queue<Event, std::vector<Event>, EventOrder> {
    void clear() noexcept { c.clear(); }
  };

  void schedule(netlist::NetId net, bool value, double t_ps, double slew_ps);
  void evaluate_cell(netlist::CellId cell, double t_ps);
  void commit(const Event& ev);
  void handle_force_marker(const Event& ev);

  const netlist::Netlist* nl_;
  DelayModel model_;

  std::vector<char> values_;          // current net values
  std::vector<std::uint64_t> pending_seq_;  // seq of live pending event per net (0 = none)
  std::vector<char> pending_value_;
  std::vector<double> pending_slew_;
  EventQueue queue_;
  std::uint64_t next_seq_ = 1;
  ForceSet forces_;

  double now_ = 0.0;
  PowerSink* sink_ = nullptr;
  bool log_enabled_ = true;
  std::vector<Transition> log_;
  std::size_t glitches_ = 0;
  std::size_t total_transitions_ = 0;
};

}  // namespace qdi::sim
