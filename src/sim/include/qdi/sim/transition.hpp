// Committed-transition record and the streaming power hook.
//
// A Transition is exactly the (C, Δt, t) triple the power model of
// section III consumes. Both simulation engines (the reference
// `Simulator` and the compiled kernel) can either append these records
// to a transition log for post-hoc analysis, or push them into a
// `PowerSink` as they commit — the streaming path that lets acquisition
// bin power samples without ever materializing the log.
#pragma once

#include "qdi/netlist/netlist.hpp"

namespace qdi::sim {

struct Transition {
  double t_ps = 0.0;       ///< commit time
  netlist::NetId net = netlist::kNoNet;
  bool rising = false;
  double cap_ff = 0.0;     ///< net capacitance at switch time
  double slew_ps = 0.0;    ///< Δt(C) of the driving gate
};

/// Streaming consumer of committed transitions. Attached to a simulation
/// engine, it observes every commit in commit order — the same order a
/// post-hoc walk of the transition log would see, so a streaming
/// accumulator is bit-identical to the log-walking one by construction.
class PowerSink {
 public:
  virtual ~PowerSink() = default;
  virtual void on_transition(const Transition& t) = 0;
};

}  // namespace qdi::sim
