// SimEngine — the minimal surface the four-phase environment (and any
// other test harness) needs from a simulation engine. Two
// implementations exist:
//
//   * `Simulator` — the reference engine, interpreting the
//     construction-oriented `netlist::Netlist` directly;
//   * `CompiledSimulator` — the execution kernel, running against the
//     flattened SoA `CompiledNetlist`.
//
// Both produce bit-identical event sequences (asserted over every
// registry target in tests/test_compiled_sim.cpp). The virtual calls
// here sit on the environment side (a handful per handshake phase); the
// hot event loop inside each engine is non-virtual.
#pragma once

#include <cstddef>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/sim/force.hpp"
#include "qdi/sim/transition.hpp"

namespace qdi::sim {

/// Which engine a simulation-backed trace source should run.
enum class EngineKind {
  Compiled,   ///< flattened SoA kernel (default)
  Reference,  ///< construction-form interpreter
  /// Bit-parallel 64-lane kernel (sim::BatchSimulator): fault-free power
  /// acquisition only. Campaign::engine(Batch) builds a
  /// campaign::BatchSimTraceSource; combinations the kernel cannot honor
  /// (fault injection, non-levelizable netlists) throw instead of
  /// silently falling back to a scalar engine.
  Batch,
};

/// Event-queue implementation of the compiled kernel. Both schedulers
/// pop events in the exact (t_ps, net, seq) total order, so every trace,
/// power sample, and campaign result is bit-identical between them —
/// the heap stays selectable for differential testing
/// (tests/test_compiled_sim.cpp, tests/test_property_fuzz.cpp).
enum class SchedulerKind {
  Wheel,  ///< two-level time wheel (calendar queue), O(1) amortized (default)
  Heap,   ///< binary min-heap, O(log n) per push/pop
};

class SimEngine {
 public:
  virtual ~SimEngine() = default;

  /// The construction netlist this engine simulates (for channel and
  /// name queries; never consulted in the event loop by the kernel).
  virtual const netlist::Netlist& netlist() const noexcept = 0;

  /// Forget all state: all nets low, time zero, logs cleared.
  virtual void reset_state() = 0;

  /// Evaluate every gate once at the current time (see Simulator).
  virtual void initialize() = 0;

  virtual bool value(netlist::NetId net) const = 0;

  /// Externally drive a primary-input net.
  virtual void drive(netlist::NetId net, bool value, double at_ps) = 0;

  /// Process events until the queue drains; see Simulator.
  virtual std::size_t run_until_stable(std::size_t max_events = 10'000'000) = 0;

  /// Arm a forced value on any net (fault injection, see force.hpp):
  /// from `from_ps` (>= now) the net is pinned to `value`; contradicting
  /// commits are suppressed until `until_ps` (exclusive; +infinity = a
  /// stuck-at fault that holds until clear_forces()). One force per net.
  /// Both engines produce bit-identical event streams under the same
  /// armed force. Throws std::invalid_argument on a window starting in
  /// the past, an empty window, or a double-armed net.
  virtual void arm_force(netlist::NetId net, bool value, double from_ps,
                         double until_ps) = 0;

  /// Disarm every force. Net values are left as-is (restore an epoch or
  /// reset to recover the fault-free state).
  virtual void clear_forces() = 0;

  /// Number of currently armed forces.
  virtual std::size_t armed_forces() const noexcept = 0;

  virtual double now() const noexcept = 0;
  virtual void advance_to(double t_ps) noexcept = 0;

  virtual std::size_t glitch_count() const noexcept = 0;
  virtual std::size_t transition_count() const noexcept = 0;

  /// Streaming transition consumer (nullptr detaches); sees every commit
  /// in commit order while attached, independent of the log.
  virtual void set_power_sink(PowerSink* sink) noexcept = 0;

  /// Transition log control. Default differs by engine: ON for the
  /// inspectable reference interpreter, OFF for the kernel.
  virtual void set_log_enabled(bool enabled) = 0;
  virtual bool log_enabled() const noexcept = 0;
  virtual const std::vector<Transition>& log() const noexcept = 0;
  virtual void clear_log() = 0;
};

}  // namespace qdi::sim
