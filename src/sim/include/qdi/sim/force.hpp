// Net-force bookkeeping shared by both simulation engines — the
// mechanism underneath sim::FaultInjector (fault.hpp).
//
// A force pins one net to a value over a time window [from_ps, until_ps).
// Arming pushes two *marker events* into the engine's ordinary event
// queue (flagged in the seq word so they bypass the per-net pending
// arrays and can never be cancelled by inertial filtering):
//
//   * the start marker activates the force: the net is driven to the
//     forced value and, while active, every contradicting schedule() is
//     suppressed before it can allocate a sequence number — the last
//     suppressed external drive is remembered as the *shadow* value;
//   * the release marker (absent for stuck-at forces, whose window is
//     unbounded) deactivates the force and re-derives the net's true
//     value: gate-driven nets re-evaluate their driver (the net recovers
//     after one gate delay, like a real node released from a probe),
//     input-driven nets replay the shadow drive.
//
// Because suppression happens before sequence allocation and marker
// handling is identical in both engines, the (t_ps, net, seq) event
// stream — and hence every transition, power sample, and classification
// — stays bit-identical between the reference interpreter and the
// compiled kernel (wheel or heap) under the same armed fault. (Markers
// sort after normal events of the *same net* at the same timestamp;
// across nets the net id decides, consistently in every engine.)
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "qdi/netlist/netlist.hpp"

namespace qdi::sim {

/// Marker-event flags in the seq word. Real sequence numbers are
/// allocated from 1 upward and never reach bit 62, so flagged events
/// sort after every normal event at the same timestamp — a force takes
/// effect (and releases) only once the activity already scheduled at
/// that instant has committed.
inline constexpr std::uint64_t kForceMarkerFlag = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kForceReleaseBit = std::uint64_t{1} << 62;

/// One armed force. `shadow_*` record the last suppressed external
/// drive so releasing a forced primary input restores what the
/// environment meanwhile drove.
struct NetForce {
  netlist::NetId net = netlist::kNoNet;
  bool value = false;
  double from_ps = 0.0;
  double until_ps = std::numeric_limits<double>::infinity();
  bool active = false;
  bool shadow_valid = false;
  bool shadow_value = false;
};

/// The set of armed forces of one engine. Fault campaigns arm one force
/// per injection, so lookups are a linear scan over a tiny vector.
class ForceSet {
 public:
  bool empty() const noexcept { return forces_.empty(); }
  std::size_t size() const noexcept { return forces_.size(); }
  void clear() noexcept { forces_.clear(); }

  NetForce* find(netlist::NetId net) noexcept {
    for (NetForce& f : forces_)
      if (f.net == net) return &f;
    return nullptr;
  }

  /// Register a force. One force per net: overlapping windows on the
  /// same net have no physical reading.
  NetForce& arm(netlist::NetId net, bool value, double from_ps,
                double until_ps) {
    if (find(net) != nullptr)
      throw std::invalid_argument(
          "ForceSet::arm: net already has an armed force");
    forces_.push_back(NetForce{net, value, from_ps, until_ps,
                               /*active=*/false, /*shadow_valid=*/false,
                               /*shadow_value=*/false});
    return forces_.back();
  }

  /// Remove the force on `net` into `out`; false if none is armed (a
  /// release marker may outlive its force after clear()).
  bool take(netlist::NetId net, NetForce& out) noexcept {
    for (std::size_t i = 0; i < forces_.size(); ++i) {
      if (forces_[i].net == net) {
        out = forces_[i];
        forces_[i] = forces_.back();
        forces_.pop_back();
        return true;
      }
    }
    return false;
  }

  /// True if scheduling `value` on `net` must be suppressed (an active
  /// force holds the contradicting value). Records the shadow so a
  /// forced primary input can be restored at release.
  bool suppress(netlist::NetId net, bool value) noexcept {
    NetForce* f = find(net);
    if (f == nullptr || !f->active || value == f->value) return false;
    f->shadow_valid = true;
    f->shadow_value = value;
    return true;
  }

 private:
  std::vector<NetForce> forces_;
};

}  // namespace qdi::sim
