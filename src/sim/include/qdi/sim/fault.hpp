// sim::FaultInjector — fault injection on simulated netlists, the
// attacker model of the DFA half of the paper (sections V–VI): an
// adversary who can pin a circuit node to a rail value (stuck-at, e.g.
// probing or laser with the beam held) or flip it for a bounded window
// (transient glitch, e.g. a single laser pulse or supply spike), and
// observes faulty ciphertexts.
//
// The injector is a thin policy layer over SimEngine::arm_force (see
// force.hpp for the mechanism): it translates a FaultSpec — net, kind,
// injection offset within the cycle, transient duration — into a force
// window anchored at the cycle start. Both engines honour forces with
// bit-identical event streams, so fault campaigns are as deterministic
// and engine-independent as power-acquisition campaigns.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "qdi/sim/engine.hpp"

namespace qdi::sim {

/// What the fault does to the net.
enum class FaultKind : std::uint8_t {
  StuckAt0,  ///< pinned low until disarm (permanent within the run)
  StuckAt1,  ///< pinned high until disarm
  Glitch0,   ///< pulled low for duration_ps, then released
  Glitch1,   ///< pulled high for duration_ps, then released
};

inline const char* name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::StuckAt0: return "stuck-at-0";
    case FaultKind::StuckAt1: return "stuck-at-1";
    case FaultKind::Glitch0: return "glitch-0";
    case FaultKind::Glitch1: return "glitch-1";
  }
  return "?";
}

/// The value the fault forces onto the net.
inline constexpr bool forced_value(FaultKind k) noexcept {
  return k == FaultKind::StuckAt1 || k == FaultKind::Glitch1;
}

/// Transient faults release after duration_ps; stuck-at faults hold
/// until disarm().
inline constexpr bool is_transient(FaultKind k) noexcept {
  return k == FaultKind::Glitch0 || k == FaultKind::Glitch1;
}

/// One injection: which net, what kind, and when within the cycle.
struct FaultSpec {
  netlist::NetId net = netlist::kNoNet;
  FaultKind kind = FaultKind::StuckAt0;
  /// Injection time relative to the cycle start (>= 0). 0 hits the net
  /// before data propagates; mid-cycle offsets catch the wavefront.
  double t_offset_ps = 0.0;
  /// Forced-window width for transient kinds; ignored for stuck-at.
  double duration_ps = 200.0;
};

/// Arms FaultSpecs on a SimEngine. One live injection at a time is the
/// supported campaign discipline (matching the paper's single-fault
/// adversary); arm() composes with an engine-side force per call, so
/// multi-fault experiments remain possible by calling it repeatedly
/// with distinct nets.
class FaultInjector {
 public:
  explicit FaultInjector(SimEngine& sim) noexcept : sim_(&sim) {}

  SimEngine& engine() const noexcept { return *sim_; }

  /// Arm `spec` against the cycle starting at `cycle_start_ps` (use
  /// FourPhaseEnv::next_cycle_start()). Throws std::invalid_argument on
  /// an unknown net, a negative offset, a non-positive transient
  /// duration, or a net that already carries a force.
  void arm(const FaultSpec& spec, double cycle_start_ps);

  /// Release every armed fault immediately (stuck-at faults have no
  /// release marker — this is how they end). Net values are left as-is;
  /// restore an epoch or reset to recover the fault-free state.
  void disarm() { sim_->clear_forces(); }

  std::size_t armed() const noexcept { return sim_->armed_forces(); }

 private:
  SimEngine* sim_;
};

/// Candidate injection sites of a netlist: every gate-driven net
/// (primary inputs are excluded — forcing those models a different,
/// less interesting adversary who simply feeds wrong plaintexts).
/// When `name_filters` is non-empty, only nets whose name contains at
/// least one of the filters (substring match) are kept — e.g. {"addkey"}
/// restricts injection to the key-mixing stage. Sorted by NetId, so
/// site indices are stable across runs.
std::vector<netlist::NetId> fault_sites(
    const netlist::Netlist& nl,
    std::span<const std::string> name_filters = {});

}  // namespace qdi::sim
