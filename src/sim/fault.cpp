#include "qdi/sim/fault.hpp"

#include <limits>
#include <stdexcept>

namespace qdi::sim {

void FaultInjector::arm(const FaultSpec& spec, double cycle_start_ps) {
  if (spec.net == netlist::kNoNet ||
      spec.net >= sim_->netlist().num_nets())
    throw std::invalid_argument("FaultInjector::arm: no such net");
  if (spec.t_offset_ps < 0.0)
    throw std::invalid_argument(
        "FaultInjector::arm: negative injection offset");
  const double from = cycle_start_ps + spec.t_offset_ps;
  double until = std::numeric_limits<double>::infinity();
  if (is_transient(spec.kind)) {
    if (!(spec.duration_ps > 0.0))
      throw std::invalid_argument(
          "FaultInjector::arm: transient fault needs a positive duration");
    until = from + spec.duration_ps;
  }
  sim_->arm_force(spec.net, forced_value(spec.kind), from, until);
}

std::vector<netlist::NetId> fault_sites(
    const netlist::Netlist& nl, std::span<const std::string> name_filters) {
  std::vector<netlist::NetId> sites;
  for (netlist::NetId n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(n);
    if (net.driver == netlist::kNoCell) continue;
    if (nl.cell(net.driver).kind == netlist::CellKind::Input) continue;
    if (!name_filters.empty()) {
      bool hit = false;
      for (const std::string& f : name_filters)
        if (net.name.find(f) != std::string::npos) {
          hit = true;
          break;
        }
      if (!hit) continue;
    }
    sites.push_back(n);
  }
  return sites;
}

}  // namespace qdi::sim
