#include "qdi/sim/environment.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "qdi/util/log.hpp"

namespace qdi::sim {

using netlist::ChannelId;
using netlist::kNoNet;

FourPhaseEnv::FourPhaseEnv(SimEngine& sim, EnvSpec spec)
    : sim_(&sim), spec_(std::move(spec)) {
  for (ChannelId ch : spec_.inputs)
    assert(ch < sim_->netlist().num_channels());
  for (ChannelId ch : spec_.outputs)
    assert(ch < sim_->netlist().num_channels());
}

void FourPhaseEnv::apply_reset(double pulse_ps) {
  if (spec_.reset != kNoNet) sim_->drive(spec_.reset, true, sim_->now());
  // Settle combinational gates (inverters on ack paths etc.) against the
  // all-zero inputs, with reset asserted.
  sim_->initialize();
  sim_->run_until_stable();
  if (spec_.reset != kNoNet) {
    sim_->drive(spec_.reset, false, sim_->now() + pulse_ps);
    sim_->run_until_stable();
  }
  // Make sure the environment side is in the all-zero state.
  for (ChannelId ch : spec_.inputs)
    for (netlist::NetId rail : sim_->netlist().channel(ch).rails)
      sim_->drive(rail, false, sim_->now());
  drive_acks(false, sim_->now());
  sim_->run_until_stable();
}

int FourPhaseEnv::read_channel(ChannelId ch) const {
  const netlist::Channel& c = sim_->netlist().channel(ch);
  int value = -1;
  for (std::size_t r = 0; r < c.rails.size(); ++r) {
    if (sim_->value(c.rails[r])) {
      if (value != -1) return -1;  // two rails high: protocol violation
      value = static_cast<int>(r);
    }
  }
  return value;
}

bool FourPhaseEnv::outputs_valid() const {
  for (ChannelId ch : spec_.outputs)
    if (read_channel(ch) < 0) return false;
  return true;
}

bool FourPhaseEnv::outputs_empty() const {
  for (ChannelId ch : spec_.outputs) {
    const netlist::Channel& c = sim_->netlist().channel(ch);
    for (netlist::NetId rail : c.rails)
      if (sim_->value(rail)) return false;
  }
  return true;
}

ChannelId FourPhaseEnv::first_invalid_output() const {
  for (ChannelId ch : spec_.outputs)
    if (read_channel(ch) < 0) return ch;
  return netlist::Netlist::kNoChannel;
}

ChannelId FourPhaseEnv::first_occupied_output() const {
  for (ChannelId ch : spec_.outputs)
    for (netlist::NetId rail : sim_->netlist().channel(ch).rails)
      if (sim_->value(rail)) return ch;
  return netlist::Netlist::kNoChannel;
}

void FourPhaseEnv::drive_acks(bool value, double at_ps) {
  for (netlist::NetId ack : spec_.acks_to_block) sim_->drive(ack, value, at_ps);
}

FourPhaseEnv::CycleResult FourPhaseEnv::send(std::span<const int> values) {
  CycleResult res;
  send_into(values, res);
  return res;
}

void FourPhaseEnv::send_into(std::span<const int> values, CycleResult& res) {
  assert(values.size() == spec_.inputs.size() &&
         "send: one value per input channel");
  // Next phase-drive time: the tester waits out the gap, then (when a
  // grid is configured) fires on its next clock edge. The batch
  // environment computes the identical expression per lane.
  const auto phase_time = [&](double now) {
    const double t = now + spec_.phase_gap_ps;
    if (spec_.phase_align_ps <= 0.0) return t;
    return std::ceil(t / spec_.phase_align_ps) * spec_.phase_align_ps;
  };

  // Reset in place; `outputs` keeps its capacity across reuses.
  res.t_start = res.t_valid = res.t_empty = res.t_end = 0.0;
  res.outputs.clear();
  res.transitions = 0;
  res.ok = false;
  res.handshake = HandshakeOutcome{};
  const std::size_t before = sim_->transition_count();

  // Align the cycle start on the period grid.
  const double t0 = next_cycle_start();
  sim_->advance_to(t0);
  res.t_start = t0;

  // Phase 1: drive valid data.
  for (std::size_t i = 0; i < values.size(); ++i) {
    const netlist::Channel& ch = sim_->netlist().channel(spec_.inputs[i]);
    assert(values[i] >= 0 &&
           static_cast<std::size_t>(values[i]) < ch.rails.size());
    sim_->drive(ch.rails[static_cast<std::size_t>(values[i])], true, t0);
  }
  sim_->run_until_stable();
  if (!outputs_valid()) {
    if (spec_.strict)
      util::log_warn("FourPhaseEnv: outputs did not become valid");
    res.handshake.stalled_phase = HandshakePhase::DataValid;
    res.handshake.stalling_channel = first_invalid_output();
    res.ok = false;
    return;
  }
  res.t_valid = sim_->now();
  res.outputs.reserve(spec_.outputs.size());
  for (ChannelId ch : spec_.outputs) res.outputs.push_back(read_channel(ch));

  // Phase 2: consumer acknowledges.
  drive_acks(true, phase_time(sim_->now()));
  sim_->run_until_stable();

  // Phase 3: return to zero.
  const double t3 = phase_time(sim_->now());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const netlist::Channel& ch = sim_->netlist().channel(spec_.inputs[i]);
    sim_->drive(ch.rails[static_cast<std::size_t>(values[i])], false, t3);
  }
  sim_->run_until_stable();
  if (!outputs_empty()) {
    if (spec_.strict)
      util::log_warn("FourPhaseEnv: outputs did not return to zero");
    res.handshake.stalled_phase = HandshakePhase::ReturnToZero;
    res.handshake.stalling_channel = first_occupied_output();
    res.ok = false;
    return;
  }
  res.t_empty = sim_->now();

  // Phase 4: release acknowledge.
  drive_acks(false, phase_time(sim_->now()));
  sim_->run_until_stable();
  res.t_end = sim_->now();

  if (res.t_end - res.t_start >= spec_.period_ps) {
    if (spec_.strict)
      throw std::runtime_error(
          "FourPhaseEnv: cycle exceeded the period; increase "
          "EnvSpec::period_ps");
    // Tolerant mode: a fault stretched the handshake past the trace
    // window — report it as an overrun, not a completed cycle.
    res.handshake.period_overrun = true;
    res.ok = false;
    res.transitions = sim_->transition_count() - before;
    return;
  }

  res.transitions = sim_->transition_count() - before;
  res.ok = true;
  res.handshake.completed = true;
}

}  // namespace qdi::sim
