#include "qdi/sim/compiled_simulator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace qdi::sim {

using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;

namespace {

// Queue order: earliest (t_ps, net, seq) pops first — the canonical
// total order shared with the reference engine and the batch engine
// (see Simulator::EventOrder for why net breaks timestamp ties). The
// triple is unique per event, so pop order is a total order — any
// correct scheduler yields the same commit sequence as the reference
// priority_queue.
template <typename Event>
bool later(const Event& a, const Event& b) noexcept {
  if (a.t_ps != b.t_ps) return a.t_ps > b.t_ps;
  if (a.net != b.net) return a.net > b.net;
  return a.seq > b.seq;
}

template <typename Event>
bool earlier(const Event& a, const Event& b) noexcept {
  if (a.t_ps != b.t_ps) return a.t_ps < b.t_ps;
  if (a.net != b.net) return a.net < b.net;
  return a.seq < b.seq;
}

std::uint64_t next_power_of_two(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Process-unique epoch ids (epochs may move between simulator clones).
std::uint64_t next_epoch_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

CompiledSimulator::CompiledSimulator(std::shared_ptr<const CompiledNetlist> cn,
                                     SchedulerKind scheduler)
    : cn_(std::move(cn)), sched_(scheduler) {
  const std::uint32_t nn = cn_->num_nets();
  values_.resize(nn);
  pending_seq_.resize(nn);
  pending_value_.resize(nn);
  pending_slew_.resize(nn);
  dirty_mark_.resize(nn);

  if (sched_ == SchedulerKind::Wheel) {
    // Bucket width = 4x the smallest gate delay — measured sweet spot:
    // coarser ticks batch more events per refill (fewer scans and
    // sorts), and events a commit schedules into the tick currently
    // being served (delay < width — common at this width) are handled
    // exactly by the sorted ready-batch insertion in push_event. Size
    // the wheel to cover the delay range (how far ahead of `now` gate
    // activity can reach) so the overflow far-list only sees the
    // environment's phase-gap and period-alignment jumps.
    double width = 4.0 * cn_->min_delay_ps();
    if (!(width > 0.0)) width = 1.0;
    inv_bucket_width_ = 1.0 / width;
    const auto span = static_cast<std::uint64_t>(
        cn_->max_delay_ps() * inv_bucket_width_) + 2;
    num_buckets_ = std::clamp<std::uint64_t>(next_power_of_two(span), 64, 4096);
    bucket_mask_ = num_buckets_ - 1;
    buckets_.resize(num_buckets_);
    occupied_.resize(num_buckets_ / 64);
  }
  reset_state();
}

void CompiledSimulator::clear_queue() {
  if (sched_ == SchedulerKind::Heap) {
    heap_.clear();
  } else {
    if (wheel_count_ > 0)
      for (std::vector<Event>& b : buckets_) b.clear();
    std::fill(occupied_.begin(), occupied_.end(), std::uint64_t{0});
    wheel_count_ = 0;
    ready_.clear();
    ready_pos_ = 0;
    overflow_.clear();
    cur_tick_ = 0;
  }
  queue_size_ = 0;
  tombstones_ = 0;
}

void CompiledSimulator::clear_dirty() {
  for (NetId n : dirty_) dirty_mark_[n] = 0;
  dirty_.clear();
}

void CompiledSimulator::mark_dirty(NetId net) {
  if (dirty_mark_[net] == 0) {
    dirty_mark_[net] = 1;
    dirty_.push_back(net);
  }
}

void CompiledSimulator::reset_state() {
  // Capacity-retaining memset: the arrays were sized at construction and
  // never reallocate across epochs.
  std::fill(values_.begin(), values_.end(), char{0});
  std::fill(pending_seq_.begin(), pending_seq_.end(), std::uint64_t{0});
  std::fill(pending_value_.begin(), pending_value_.end(), char{0});
  std::fill(pending_slew_.begin(), pending_slew_.end(), 0.0);
  clear_queue();
  forces_.clear();
  clear_dirty();
  baseline_epoch_ = 0;
  next_seq_ = 1;
  now_ = 0.0;
  log_.clear();
  glitches_ = 0;
  total_transitions_ = 0;
}

CompiledSimulator::Epoch CompiledSimulator::save_epoch() {
  if (queue_size_ != 0)
    throw std::logic_error(
        "CompiledSimulator::save_epoch: event queue must be drained "
        "(run run_until_stable first)");
  if (!forces_.empty())
    throw std::logic_error(
        "CompiledSimulator::save_epoch: clear_forces() before snapshotting "
        "(an epoch must capture fault-free state)");
  Epoch e;
  e.values = values_;
  e.now = now_;
  e.next_seq = next_seq_;
  e.glitches = glitches_;
  e.total_transitions = total_transitions_;
  e.id = next_epoch_id();
  // The live state now coincides with `e`: future commits accumulate the
  // dirty set against it.
  clear_dirty();
  baseline_epoch_ = e.id;
  return e;
}

void CompiledSimulator::restore_epoch(const Epoch& e) {
  if (queue_size_ != 0)
    throw std::logic_error(
        "CompiledSimulator::restore_epoch: event queue must be drained "
        "(run run_until_stable first)");
  if (e.values.size() != values_.size())
    throw std::invalid_argument(
        "CompiledSimulator::restore_epoch: epoch geometry does not match "
        "this netlist");
  // A drained queue implies no live pending events (pending_seq_ is all
  // zero), so only net values diverge from the snapshot — and only at
  // the nets committed since the state last coincided with it.
  if (e.id != 0 && e.id == baseline_epoch_) {
    for (NetId n : dirty_) values_[n] = e.values[n];
    clear_dirty();
  } else {
    std::copy(e.values.begin(), e.values.end(), values_.begin());
    clear_dirty();
    baseline_epoch_ = e.id;
  }
  forces_.clear();
  next_seq_ = e.next_seq;
  now_ = e.now;
  log_.clear();
  glitches_ = e.glitches;
  total_transitions_ = e.total_transitions;
}

void CompiledSimulator::initialize() {
  const std::uint32_t nc = cn_->num_cells();
  for (std::uint32_t c = 0; c < nc; ++c) evaluate_cell(c, now_);
}

void CompiledSimulator::drive(NetId net, bool value, double at_ps) {
  if (net >= values_.size() || !cn_->driven_by_input[net])
    throw std::invalid_argument(
        "CompiledSimulator::drive: only primary-input nets can be driven");
  schedule(net, value, at_ps, 0.0);
}

void CompiledSimulator::arm_force(NetId net, bool value, double from_ps,
                                  double until_ps) {
  if (net >= values_.size())
    throw std::invalid_argument("CompiledSimulator::arm_force: no such net");
  if (from_ps < now_)
    throw std::invalid_argument(
        "CompiledSimulator::arm_force: force window starts in the past");
  if (!(until_ps > from_ps))
    throw std::invalid_argument(
        "CompiledSimulator::arm_force: empty force window");
  forces_.arm(net, value, from_ps, until_ps);
  // Marker events carry flag bits in seq, bypassing the pending arrays —
  // inertial filtering can neither cancel them nor be confused by them.
  push_event(Event{from_ps, kForceMarkerFlag | next_seq_++, net, value});
  if (std::isfinite(until_ps))
    push_event(Event{until_ps, kForceMarkerFlag | kForceReleaseBit | next_seq_++,
                     net, value});
}

void CompiledSimulator::handle_force_marker(const Event& ev) {
  now_ = ev.t_ps;
  if ((ev.seq & kForceReleaseBit) == 0) {
    NetForce* f = forces_.find(ev.net);
    if (f == nullptr) return;  // force was cleared after arming
    f->active = true;
    // Any in-flight event on the net yields to the force; its value is
    // shadowed first (a drive scheduled before the window opened but
    // landing inside it must still replay at release). The forced edge
    // then schedules (or dedupes) against the committed value.
    if (pending_seq_[ev.net] != 0) {
      f->shadow_valid = true;
      f->shadow_value = pending_value_[ev.net];
      pending_seq_[ev.net] = 0;
      ++tombstones_;  // the orphaned event pops as stale later
    }
    schedule(ev.net, f->value, ev.t_ps, 0.0);
  } else {
    NetForce rec;
    if (!forces_.take(ev.net, rec)) return;
    const netlist::CellId driver = cn_->source().net(ev.net).driver;
    if (driver == netlist::kNoCell) return;
    if (cn_->driven_by_input[ev.net]) {
      // Replay what the environment drove while the force held the net.
      if (rec.shadow_valid) schedule(ev.net, rec.shadow_value, ev.t_ps, 0.0);
    } else {
      // The net recovers its combinational value one gate delay after
      // the release, like a node let go by a probe.
      evaluate_cell(driver, ev.t_ps);
    }
  }
}

void CompiledSimulator::push_event(const Event& ev) {
  ++queue_size_;
  if (sched_ == SchedulerKind::Heap) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), later<Event>);
    return;
  }
  const std::uint64_t tick = tick_of(ev.t_ps);
  if (queue_size_ == 1) {
    // Queue was empty: re-anchor the wheel on this event.
    cur_tick_ = tick;
    ready_.clear();
    ready_pos_ = 0;
  } else if (tick < cur_tick_) {
    // Only reachable from drive() calls behind `now` while the loop is
    // idle (commits always schedule at t >= now, whose tick is the one
    // being served). Re-anchor; multi-lap bucket residents stay correct
    // because extraction filters by exact tick.
    spill_ready();
    cur_tick_ = tick;
  }
  if (ready_pos_ < ready_.size() && tick == cur_tick_) {
    // Insertion into the tick currently being served: keep the batch
    // sorted. The event sorts after everything already popped (t >= now
    // and its seq is the largest yet), so pop order stays exact.
    ready_.insert(std::upper_bound(ready_.begin() +
                                       static_cast<std::ptrdiff_t>(ready_pos_),
                                   ready_.end(), ev, earlier<Event>),
                  ev);
    return;
  }
  if (tick - cur_tick_ < num_buckets_) {
    bucket_insert(ev);
  } else {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), later<Event>);
  }
}

void CompiledSimulator::bucket_insert(const Event& ev) {
  const std::uint64_t b = tick_of(ev.t_ps) & bucket_mask_;
  if (buckets_[b].empty()) set_occupied(b);
  buckets_[b].push_back(ev);
  ++wheel_count_;
}

/// Push the unserved remainder of the ready batch back into the wheel
/// (cold path: only before re-anchoring the wheel backwards).
void CompiledSimulator::spill_ready() {
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i)
    bucket_insert(ready_[i]);
  ready_.clear();
  ready_pos_ = 0;
}

/// Next occupied bucket index scanning one full wrap from
/// `start_bucket`; num_buckets_ when the wheel is empty.
std::uint64_t CompiledSimulator::find_next_occupied(
    std::uint64_t start_bucket) const noexcept {
  const std::size_t words = occupied_.size();
  std::size_t w = start_bucket >> 6;
  std::uint64_t word =
      occupied_[w] & (~std::uint64_t{0} << (start_bucket & 63));
  for (std::size_t i = 0; i < words; ++i) {
    if (word != 0)
      return (static_cast<std::uint64_t>(w) << 6) +
             static_cast<std::uint64_t>(std::countr_zero(word));
    w = w + 1 == words ? 0 : w + 1;
    word = occupied_[w];
  }
  // Wrapped fully: only the skipped low bits of the start word remain.
  word = occupied_[start_bucket >> 6] &
         ~(~std::uint64_t{0} << (start_bucket & 63));
  if (word != 0)
    return ((start_bucket >> 6) << 6) +
           static_cast<std::uint64_t>(std::countr_zero(word));
  return num_buckets_;
}

void CompiledSimulator::sort_ready() {
  // Batches are typically a handful of events: insertion sort beats the
  // introsort dispatch there, and both are exact on the (t, seq) order.
  if (ready_.size() <= 16) {
    for (std::size_t i = 1; i < ready_.size(); ++i) {
      const Event ev = ready_[i];
      std::size_t j = i;
      for (; j > 0 && earlier(ev, ready_[j - 1]); --j) ready_[j] = ready_[j - 1];
      ready_[j] = ev;
    }
  } else {
    std::sort(ready_.begin(), ready_.end(), earlier<Event>);
  }
}

/// Common-case refill: the next occupied bucket holds exactly one tick's
/// events (true in all normal operation — multi-lap residents require a
/// backward re-anchor), so the whole bucket becomes the ready batch by
/// swap. Returns false without extracting anything on the cold cases.
bool CompiledSimulator::fast_refill() {
  const std::uint64_t s = cur_tick_ & bucket_mask_;
  const std::uint64_t b = find_next_occupied(s);
  if (b == num_buckets_) return false;  // wheel empty
  const std::uint64_t tick = cur_tick_ + ((b - s) & bucket_mask_);
  std::vector<Event>& bucket = buckets_[b];
  for (const Event& ev : bucket)
    if (tick_of(ev.t_ps) != tick) return false;  // multi-lap: cold path
  std::swap(ready_, bucket);  // bucket inherits the old ready_ capacity
  clear_occupied(b);
  wheel_count_ -= ready_.size();
  cur_tick_ = tick;
  sort_ready();
  return true;
}

/// Exact-tick rotation scan — correct in every state the wheel can
/// reach, at a bucket walk's cost. Only runs when fast_refill declined.
bool CompiledSimulator::cold_refill() {
  for (std::uint64_t step = 0; step < num_buckets_; ++step) {
    const std::uint64_t tick = cur_tick_ + step;
    std::vector<Event>& b = buckets_[tick & bucket_mask_];
    if (b.empty()) continue;
    for (std::size_t i = 0; i < b.size();) {
      if (tick_of(b[i].t_ps) == tick) {
        ready_.push_back(b[i]);
        b[i] = b.back();
        b.pop_back();
      } else {
        ++i;  // a later lap of this bucket
      }
    }
    if (b.empty()) clear_occupied(tick & bucket_mask_);
    if (!ready_.empty()) {
      wheel_count_ -= ready_.size();
      cur_tick_ = tick;
      sort_ready();
      return true;
    }
  }
  return false;
}

void CompiledSimulator::refill_ready() {
  ready_.clear();
  ready_pos_ = 0;
  for (;;) {
    if (wheel_count_ == 0) {
      // Everything queued sits in the far-list: jump the wheel straight
      // to its earliest tick instead of scanning empty buckets.
      cur_tick_ = tick_of(overflow_.front().t_ps);
    }
    // Migrate far-list events that fell inside the horizon as the wheel
    // turned. They all have ticks > cur_tick_ of any previous serve, so
    // nothing is migrated late.
    while (!overflow_.empty() &&
           tick_of(overflow_.front().t_ps) < cur_tick_ + num_buckets_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), later<Event>);
      const Event ev = overflow_.back();
      overflow_.pop_back();
      bucket_insert(ev);
    }
    if (fast_refill()) return;
    if (cold_refill()) return;
    if (wheel_count_ > 0) {
      // Stranded beyond one rotation (possible only after a backward
      // re-anchor): jump to the earliest bucket resident. Cold path.
      std::uint64_t min_tick = ~std::uint64_t{0};
      for (const std::vector<Event>& b : buckets_)
        for (const Event& ev : b) min_tick = std::min(min_tick, tick_of(ev.t_ps));
      cur_tick_ = min_tick;
    }
    // else: loop re-anchors on the far-list and migrates.
  }
}

CompiledSimulator::Event CompiledSimulator::pop_event() {
  --queue_size_;
  if (sched_ == SchedulerKind::Heap) {
    std::pop_heap(heap_.begin(), heap_.end(), later<Event>);
    const Event ev = heap_.back();
    heap_.pop_back();
    return ev;
  }
  if (ready_pos_ >= ready_.size()) refill_ready();
  return ready_[ready_pos_++];
}

/// Drop every tombstoned (lazily cancelled) event in place. Never
/// changes the commit sequence — tombstones are skipped at pop anyway —
/// it only bounds queue growth under pathological retraction patterns.
void CompiledSimulator::purge_tombstones() {
  const auto stale = [this](const Event& ev) {
    // Force markers are never stale: their flagged seq lives outside the
    // pending arrays entirely.
    return (ev.seq & kForceMarkerFlag) == 0 && pending_seq_[ev.net] != ev.seq;
  };
  std::size_t removed = 0;
  if (sched_ == SchedulerKind::Heap) {
    const auto it = std::remove_if(heap_.begin(), heap_.end(), stale);
    removed = static_cast<std::size_t>(heap_.end() - it);
    heap_.erase(it, heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), later<Event>);
  } else {
    for (std::uint64_t bi = 0; bi < num_buckets_; ++bi) {
      std::vector<Event>& b = buckets_[bi];
      if (b.empty()) continue;
      const auto it = std::remove_if(b.begin(), b.end(), stale);
      const auto n = static_cast<std::size_t>(b.end() - it);
      b.erase(it, b.end());
      removed += n;
      wheel_count_ -= n;
      if (b.empty()) clear_occupied(bi);
    }
    {
      const auto it = std::remove_if(overflow_.begin(), overflow_.end(), stale);
      removed += static_cast<std::size_t>(overflow_.end() - it);
      overflow_.erase(it, overflow_.end());
      std::make_heap(overflow_.begin(), overflow_.end(), later<Event>);
    }
    // The unserved ready remainder is already sorted; remove_if keeps order.
    const auto it = std::remove_if(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_), ready_.end(),
        stale);
    removed += static_cast<std::size_t>(ready_.end() - it);
    ready_.erase(it, ready_.end());
  }
  queue_size_ -= removed;
  tombstones_ = 0;
}

void CompiledSimulator::schedule(NetId net, bool value, double t_ps,
                                 double slew_ps) {
  // An active force suppresses contradicting commits before sequence
  // allocation, so faulty and fault-free runs share the same event
  // numbering up to the injection point in both engines.
  if (!forces_.empty() && forces_.suppress(net, value)) return;
  // Inertial filtering — identical to Simulator::schedule.
  if (pending_seq_[net] != 0) {
    if (pending_value_[net] == static_cast<char>(value)) return;
    pending_seq_[net] = 0;  // cancel (lazy: the event stays as a tombstone)
    ++glitches_;
    if (++tombstones_ * 2 > queue_size_ && queue_size_ >= 64)
      purge_tombstones();
    if (static_cast<char>(value) == values_[net]) return;
  } else if (static_cast<char>(value) == values_[net]) {
    return;
  }
  const std::uint64_t seq = next_seq_++;
  pending_seq_[net] = seq;
  pending_value_[net] = static_cast<char>(value);
  pending_slew_[net] = slew_ps;
  push_event(Event{t_ps, seq, net, value});
}

void CompiledSimulator::evaluate_cell(std::uint32_t cell, double t_ps) {
  const CompiledNetlist& cn = *cn_;
  const CellKind k = cn.kind[cell];
  const std::uint32_t out_net = cn.output[cell];
  if (k == CellKind::Input || k == CellKind::Output || out_net == kNoNet)
    return;

  // Inlined truth tables — must mirror netlist::evaluate() exactly
  // (tests/test_compiled_sim.cpp pins the two together per target).
  const std::uint32_t lo = cn.fanin_offset[cell];
  const std::uint32_t hi = cn.fanin_offset[cell + 1];
  const auto in = [&](std::uint32_t i) {
    return values_[cn.fanin_net[lo + i]] != 0;
  };
  const auto all = [&](std::uint32_t a, std::uint32_t b) {
    for (std::uint32_t i = a; i < b; ++i)
      if (values_[cn.fanin_net[i]] == 0) return false;
    return true;
  };
  const auto any = [&](std::uint32_t a, std::uint32_t b) {
    for (std::uint32_t i = a; i < b; ++i)
      if (values_[cn.fanin_net[i]] != 0) return true;
    return false;
  };
  const auto muller = [&](std::uint32_t a, std::uint32_t b, bool prev) {
    if (all(a, b)) return true;
    if (!any(a, b)) return false;
    return prev;
  };

  const bool prev = values_[out_net] != 0;
  bool out = false;
  switch (k) {
    case CellKind::Input:
    case CellKind::Output:
      return;
    case CellKind::Buf:
      out = in(0);
      break;
    case CellKind::Inv:
      out = !in(0);
      break;
    case CellKind::And2:
    case CellKind::And3:
      out = all(lo, hi);
      break;
    case CellKind::Or2:
    case CellKind::Or3:
    case CellKind::Or4:
      out = any(lo, hi);
      break;
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4:
      out = !any(lo, hi);
      break;
    case CellKind::Nand2:
    case CellKind::Nand3:
      out = !all(lo, hi);
      break;
    case CellKind::Xor2:
      out = in(0) != in(1);
      break;
    case CellKind::Xnor2:
      out = in(0) == in(1);
      break;
    case CellKind::Muller2:
    case CellKind::Muller3:
    case CellKind::Muller4:
      out = muller(lo, hi, prev);
      break;
    case CellKind::Muller2R:
    case CellKind::Muller3R:
      // Last pin is the active-high reset: it forces the output low.
      out = values_[cn.fanin_net[hi - 1]] != 0 ? false
                                               : muller(lo, hi - 1, prev);
      break;
  }

  schedule(out_net, out, t_ps + cn.delay_ps[cell], cn.slew_ps[cell]);
}

void CompiledSimulator::commit(const Event& ev) {
  const CompiledNetlist& cn = *cn_;
  values_[ev.net] = static_cast<char>(ev.value);
  mark_dirty(ev.net);
  now_ = ev.t_ps;
  ++total_transitions_;
  if (sink_ != nullptr || log_enabled_) {
    const Transition tr{ev.t_ps, ev.net, ev.value, cn.cap_ff[ev.net],
                        pending_slew_[ev.net]};
    if (sink_ != nullptr) sink_->on_transition(tr);
    if (log_enabled_) log_.push_back(tr);
  }
  const std::uint32_t lo = cn.fanout_offset[ev.net];
  const std::uint32_t hi = cn.fanout_offset[ev.net + 1];
  for (std::uint32_t i = lo; i < hi; ++i)
    evaluate_cell(cn.fanout_cell[i], ev.t_ps);
}

std::size_t CompiledSimulator::run_until_stable(std::size_t max_events) {
  std::size_t committed = 0;
  while (queue_size_ != 0) {
    const Event ev = pop_event();
    if (ev.seq & kForceMarkerFlag) {  // fault-injection start/release
      handle_force_marker(ev);
      continue;
    }
    if (pending_seq_[ev.net] != ev.seq) {  // cancelled/stale
      --tombstones_;
      continue;
    }
    pending_seq_[ev.net] = 0;
    commit(ev);
    if (++committed > max_events)
      throw std::runtime_error(
          "CompiledSimulator::run_until_stable: event budget exhausted "
          "(oscillating netlist?)");
  }
  return committed;
}

}  // namespace qdi::sim
