#include "qdi/sim/compiled_simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace qdi::sim {

using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;

namespace {

// Heap order: earliest (t_ps, seq) pops first. The pair is unique per
// event, so pop order is a total order — any correct heap yields the
// same commit sequence as the reference priority_queue.
template <typename Event>
bool later(const Event& a, const Event& b) noexcept {
  if (a.t_ps != b.t_ps) return a.t_ps > b.t_ps;
  return a.seq > b.seq;
}

}  // namespace

CompiledSimulator::CompiledSimulator(std::shared_ptr<const CompiledNetlist> cn)
    : cn_(std::move(cn)) {
  const std::uint32_t nn = cn_->num_nets();
  values_.resize(nn);
  pending_seq_.resize(nn);
  pending_value_.resize(nn);
  pending_slew_.resize(nn);
  reset_state();
}

void CompiledSimulator::reset_state() {
  // Capacity-retaining memset: the arrays were sized at construction and
  // never reallocate across epochs.
  std::fill(values_.begin(), values_.end(), char{0});
  std::fill(pending_seq_.begin(), pending_seq_.end(), std::uint64_t{0});
  std::fill(pending_value_.begin(), pending_value_.end(), char{0});
  std::fill(pending_slew_.begin(), pending_slew_.end(), 0.0);
  heap_.clear();
  next_seq_ = 1;
  now_ = 0.0;
  log_.clear();
  glitches_ = 0;
  total_transitions_ = 0;
}

CompiledSimulator::Epoch CompiledSimulator::save_epoch() const {
  assert(heap_.empty() && "save_epoch: event queue must be drained");
  Epoch e;
  e.values = values_;
  e.now = now_;
  e.next_seq = next_seq_;
  e.glitches = glitches_;
  e.total_transitions = total_transitions_;
  return e;
}

void CompiledSimulator::restore_epoch(const Epoch& e) {
  assert(e.values.size() == values_.size());
  std::copy(e.values.begin(), e.values.end(), values_.begin());
  // A drained queue implies no live pending events; the pending arrays
  // only matter while pending_seq_ is non-zero, so zeroing it suffices.
  std::fill(pending_seq_.begin(), pending_seq_.end(), std::uint64_t{0});
  heap_.clear();
  next_seq_ = e.next_seq;
  now_ = e.now;
  log_.clear();
  glitches_ = e.glitches;
  total_transitions_ = e.total_transitions;
}

void CompiledSimulator::initialize() {
  const std::uint32_t nc = cn_->num_cells();
  for (std::uint32_t c = 0; c < nc; ++c) evaluate_cell(c, now_);
}

void CompiledSimulator::drive(NetId net, bool value, double at_ps) {
  assert(net < values_.size());
  assert(cn_->driven_by_input[net] &&
         "drive() is only legal on primary-input nets");
  schedule(net, value, at_ps, 0.0);
}

void CompiledSimulator::push_event(const Event& ev) {
  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), later<Event>);
}

CompiledSimulator::Event CompiledSimulator::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), later<Event>);
  const Event ev = heap_.back();
  heap_.pop_back();
  return ev;
}

void CompiledSimulator::schedule(NetId net, bool value, double t_ps,
                                 double slew_ps) {
  // Inertial filtering — identical to Simulator::schedule.
  if (pending_seq_[net] != 0) {
    if (pending_value_[net] == static_cast<char>(value)) return;
    pending_seq_[net] = 0;  // cancel (lazy: stale seq stays in the heap)
    ++glitches_;
    if (static_cast<char>(value) == values_[net]) return;
  } else if (static_cast<char>(value) == values_[net]) {
    return;
  }
  const std::uint64_t seq = next_seq_++;
  pending_seq_[net] = seq;
  pending_value_[net] = static_cast<char>(value);
  pending_slew_[net] = slew_ps;
  push_event(Event{t_ps, seq, net, value});
}

void CompiledSimulator::evaluate_cell(std::uint32_t cell, double t_ps) {
  const CompiledNetlist& cn = *cn_;
  const CellKind k = cn.kind[cell];
  const std::uint32_t out_net = cn.output[cell];
  if (k == CellKind::Input || k == CellKind::Output || out_net == kNoNet)
    return;

  // Inlined truth tables — must mirror netlist::evaluate() exactly
  // (tests/test_compiled_sim.cpp pins the two together per target).
  const std::uint32_t lo = cn.fanin_offset[cell];
  const std::uint32_t hi = cn.fanin_offset[cell + 1];
  const auto in = [&](std::uint32_t i) {
    return values_[cn.fanin_net[lo + i]] != 0;
  };
  const auto all = [&](std::uint32_t a, std::uint32_t b) {
    for (std::uint32_t i = a; i < b; ++i)
      if (values_[cn.fanin_net[i]] == 0) return false;
    return true;
  };
  const auto any = [&](std::uint32_t a, std::uint32_t b) {
    for (std::uint32_t i = a; i < b; ++i)
      if (values_[cn.fanin_net[i]] != 0) return true;
    return false;
  };
  const auto muller = [&](std::uint32_t a, std::uint32_t b, bool prev) {
    if (all(a, b)) return true;
    if (!any(a, b)) return false;
    return prev;
  };

  const bool prev = values_[out_net] != 0;
  bool out = false;
  switch (k) {
    case CellKind::Input:
    case CellKind::Output:
      return;
    case CellKind::Buf:
      out = in(0);
      break;
    case CellKind::Inv:
      out = !in(0);
      break;
    case CellKind::And2:
    case CellKind::And3:
      out = all(lo, hi);
      break;
    case CellKind::Or2:
    case CellKind::Or3:
    case CellKind::Or4:
      out = any(lo, hi);
      break;
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4:
      out = !any(lo, hi);
      break;
    case CellKind::Nand2:
    case CellKind::Nand3:
      out = !all(lo, hi);
      break;
    case CellKind::Xor2:
      out = in(0) != in(1);
      break;
    case CellKind::Xnor2:
      out = in(0) == in(1);
      break;
    case CellKind::Muller2:
    case CellKind::Muller3:
    case CellKind::Muller4:
      out = muller(lo, hi, prev);
      break;
    case CellKind::Muller2R:
    case CellKind::Muller3R:
      // Last pin is the active-high reset: it forces the output low.
      out = values_[cn.fanin_net[hi - 1]] != 0 ? false
                                               : muller(lo, hi - 1, prev);
      break;
  }

  schedule(out_net, out, t_ps + cn.delay_ps[cell], cn.slew_ps[cell]);
}

void CompiledSimulator::commit(const Event& ev) {
  const CompiledNetlist& cn = *cn_;
  values_[ev.net] = static_cast<char>(ev.value);
  now_ = ev.t_ps;
  ++total_transitions_;
  if (sink_ != nullptr || log_enabled_) {
    const Transition tr{ev.t_ps, ev.net, ev.value, cn.cap_ff[ev.net],
                        pending_slew_[ev.net]};
    if (sink_ != nullptr) sink_->on_transition(tr);
    if (log_enabled_) log_.push_back(tr);
  }
  const std::uint32_t lo = cn.fanout_offset[ev.net];
  const std::uint32_t hi = cn.fanout_offset[ev.net + 1];
  for (std::uint32_t i = lo; i < hi; ++i)
    evaluate_cell(cn.fanout_cell[i], ev.t_ps);
}

std::size_t CompiledSimulator::run_until_stable(std::size_t max_events) {
  std::size_t committed = 0;
  while (!heap_.empty()) {
    const Event ev = pop_event();
    if (pending_seq_[ev.net] != ev.seq) continue;  // cancelled/stale
    pending_seq_[ev.net] = 0;
    commit(ev);
    if (++committed > max_events)
      throw std::runtime_error(
          "CompiledSimulator::run_until_stable: event budget exhausted "
          "(oscillating netlist?)");
  }
  return committed;
}

}  // namespace qdi::sim
