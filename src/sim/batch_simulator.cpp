#include "qdi/sim/batch_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace qdi::sim {

using netlist::CellKind;
using netlist::kNoNet;
using netlist::NetId;

namespace {

constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

inline std::uint64_t lane_bit(unsigned lane) noexcept {
  return std::uint64_t{1} << lane;
}

std::uint64_t next_power_of_two(std::uint64_t v) noexcept {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

BatchSimulator::BatchSimulator(std::shared_ptr<const BatchNetlist> bn)
    : bn_(std::move(bn)), cn_(&bn_->compiled()) {
  const std::uint32_t nn = cn_->num_nets();
  cur_.resize(nn);
  pend_.resize(nn);
  spill_.resize(nn);
  // Calendar geometry — the scalar wheel's derivation (see
  // CompiledSimulator's constructor): buckets of 4x the smallest gate
  // delay, enough of them to cover the delay range so only the
  // environment's phase-gap jumps reach the far-list.
  double width = 4.0 * cn_->min_delay_ps();
  if (!(width > 0.0)) width = 1.0;
  inv_bucket_width_ = 1.0 / width;
  const auto span =
      static_cast<std::uint64_t>(cn_->max_delay_ps() * inv_bucket_width_) + 2;
  num_buckets_ = std::clamp<std::uint64_t>(next_power_of_two(span), 64, 4096);
  bucket_mask_ = num_buckets_ - 1;
  buckets_.resize(num_buckets_);
  occupied_.resize(num_buckets_ / 64);
  reset_state();
}

void BatchSimulator::clear_queue() {
  if (wheel_count_ > 0)
    for (std::vector<HeapEvent>& b : buckets_) b.clear();
  std::fill(occupied_.begin(), occupied_.end(), std::uint64_t{0});
  wheel_count_ = 0;
  ready_.clear();
  ready_pos_ = 0;
  overflow_.clear();
  cur_tick_ = 0;
  queue_size_ = 0;
}

void BatchSimulator::reset_state() {
  std::fill(cur_.begin(), cur_.end(), std::uint64_t{0});
  std::fill(pend_.begin(), pend_.end(), PendState{});
  for (auto& g : spill_) g.clear();
  clear_queue();
  std::fill(std::begin(now_), std::end(now_), 0.0);
  std::fill(std::begin(glitches_), std::end(glitches_), std::size_t{0});
  std::fill(std::begin(transitions_), std::end(transitions_), std::size_t{0});
}

BatchSimulator::Epoch BatchSimulator::save_epoch() const {
  if (queue_size_ != 0)
    throw std::logic_error(
        "BatchSimulator::save_epoch: event queue must be drained");
  Epoch e;
  e.values.resize(cur_.size());
  for (std::size_t net = 0; net < cur_.size(); ++net) {
    const std::uint64_t w = cur_[net];
    if (w != 0 && w != kAllLanes)
      throw std::logic_error(
          "BatchSimulator::save_epoch: lanes diverged — an epoch must "
          "capture lane-uniform (post-reset) state");
    e.values[net] = w != 0 ? 1 : 0;
  }
  for (std::size_t l = 1; l < kBatchLanes; ++l)
    if (now_[l] != now_[0] || glitches_[l] != glitches_[0] ||
        transitions_[l] != transitions_[0])
      throw std::logic_error(
          "BatchSimulator::save_epoch: lane clocks diverged — an epoch "
          "must capture lane-uniform (post-reset) state");
  e.now = now_[0];
  e.glitches = glitches_[0];
  e.transitions = transitions_[0];
  return e;
}

void BatchSimulator::restore_epoch(const Epoch& e) {
  if (queue_size_ != 0)
    throw std::logic_error(
        "BatchSimulator::restore_epoch: event queue must be drained");
  if (e.values.size() != cur_.size())
    throw std::invalid_argument(
        "BatchSimulator::restore_epoch: epoch geometry does not match "
        "this netlist");
  for (std::size_t net = 0; net < cur_.size(); ++net)
    cur_[net] = e.values[net] != 0 ? kAllLanes : std::uint64_t{0};
  // A drained queue implies no live pending lanes (every group born
  // pushed a key, and that key's pop either commits the group or
  // tombstones its absence); clear defensively anyway — it is O(nets)
  // next to a 64-trace block.
  std::fill(pend_.begin(), pend_.end(), PendState{});
  for (auto& g : spill_) g.clear();
  std::fill(std::begin(now_), std::end(now_), e.now);
  std::fill(std::begin(glitches_), std::end(glitches_), e.glitches);
  std::fill(std::begin(transitions_), std::end(transitions_), e.transitions);
}

void BatchSimulator::advance_to(double t_ps, std::uint64_t mask) {
  while (mask != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    now_[lane] = std::max(now_[lane], t_ps);
  }
}

void BatchSimulator::initialize(std::uint64_t mask) {
  const std::uint32_t nc = cn_->num_cells();
  for (std::uint32_t c = 0; c < nc; ++c) evaluate_cell(c, now_[0], mask);
}

void BatchSimulator::drive(NetId net, bool value, double at_ps,
                           std::uint64_t mask) {
  if (net >= cur_.size() || !cn_->driven_by_input[net])
    throw std::invalid_argument(
        "BatchSimulator::drive: only primary-input nets can be driven");
  schedule_word(net, value ? mask : 0, mask, at_ps);
}

void BatchSimulator::push_key(double t_ps, std::uint32_t net) {
  const HeapEvent ev{t_ps, net};
  ++queue_size_;
  const std::uint64_t tick = tick_of(t_ps);
  if (queue_size_ == 1) {
    // Queue was empty: re-anchor the wheel on this key.
    cur_tick_ = tick;
    ready_.clear();
    ready_pos_ = 0;
  } else if (tick < cur_tick_) {
    // Only reachable from drive() calls behind the serve point while the
    // loop is idle (commits always schedule at t >= now). Re-anchor;
    // multi-lap bucket residents stay correct because extraction filters
    // by exact tick.
    spill_ready();
    cur_tick_ = tick;
  }
  if (ready_pos_ < ready_.size() && tick == cur_tick_) {
    // Key born into the tick currently being served: keep the batch
    // sorted. It sorts after everything already popped (its time is
    // strictly later than the commit that birthed it), so pop order
    // stays exact.
    ready_.insert(std::upper_bound(ready_.begin() +
                                       static_cast<std::ptrdiff_t>(ready_pos_),
                                   ready_.end(), ev, Earlier{}),
                  ev);
    return;
  }
  if (tick - cur_tick_ < num_buckets_) {
    bucket_insert(ev);
  } else {
    overflow_.push_back(ev);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void BatchSimulator::bucket_insert(const HeapEvent& ev) {
  const std::uint64_t b = tick_of(ev.t_ps) & bucket_mask_;
  if (buckets_[b].empty()) set_occupied(b);
  buckets_[b].push_back(ev);
  ++wheel_count_;
}

/// Push the unserved remainder of the ready batch back into the wheel
/// (cold path: only before re-anchoring the wheel backwards).
void BatchSimulator::spill_ready() {
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i)
    bucket_insert(ready_[i]);
  ready_.clear();
  ready_pos_ = 0;
}

/// Next occupied bucket index scanning one full wrap from
/// `start_bucket`; num_buckets_ when the wheel is empty.
std::uint64_t BatchSimulator::find_next_occupied(
    std::uint64_t start_bucket) const noexcept {
  const std::size_t words = occupied_.size();
  std::size_t w = start_bucket >> 6;
  std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (start_bucket & 63));
  for (std::size_t step = 0; step < words; ++step) {
    if (word != 0)
      return ((w & (words - 1)) << 6) +
             static_cast<std::uint64_t>(std::countr_zero(word));
    w = (w + 1) % words;
    word = occupied_[w];
  }
  word = occupied_[start_bucket >> 6] &
         ~(~std::uint64_t{0} << (start_bucket & 63));
  if (word != 0)
    return ((start_bucket >> 6) << 6) +
           static_cast<std::uint64_t>(std::countr_zero(word));
  return num_buckets_;
}

void BatchSimulator::sort_ready() {
  // Batches are typically a handful of keys: insertion sort beats the
  // introsort dispatch there, and both are exact on the (t, net) order.
  if (ready_.size() <= 16) {
    for (std::size_t i = 1; i < ready_.size(); ++i) {
      const HeapEvent ev = ready_[i];
      std::size_t j = i;
      for (; j > 0 && Earlier{}(ev, ready_[j - 1]); --j)
        ready_[j] = ready_[j - 1];
      ready_[j] = ev;
    }
  } else {
    std::sort(ready_.begin(), ready_.end(), Earlier{});
  }
}

/// Common-case refill: the next occupied bucket holds exactly one tick's
/// keys (true in all normal operation — multi-lap residents require a
/// backward re-anchor), so the whole bucket becomes the ready batch by
/// swap. Returns false without extracting anything on the cold cases.
bool BatchSimulator::fast_refill() {
  const std::uint64_t s = cur_tick_ & bucket_mask_;
  const std::uint64_t b = find_next_occupied(s);
  if (b == num_buckets_) return false;  // wheel empty
  const std::uint64_t tick = cur_tick_ + ((b - s) & bucket_mask_);
  std::vector<HeapEvent>& bucket = buckets_[b];
  for (const HeapEvent& ev : bucket)
    if (tick_of(ev.t_ps) != tick) return false;  // multi-lap: cold path
  std::swap(ready_, bucket);  // bucket inherits the old ready_ capacity
  clear_occupied(b);
  wheel_count_ -= ready_.size();
  cur_tick_ = tick;
  sort_ready();
  return true;
}

/// Exact-tick rotation scan — correct in every state the wheel can
/// reach, at a bucket walk's cost. Only runs when fast_refill declined.
bool BatchSimulator::cold_refill() {
  for (std::uint64_t step = 0; step < num_buckets_; ++step) {
    const std::uint64_t tick = cur_tick_ + step;
    std::vector<HeapEvent>& b = buckets_[tick & bucket_mask_];
    if (b.empty()) continue;
    for (std::size_t i = 0; i < b.size();) {
      if (tick_of(b[i].t_ps) == tick) {
        ready_.push_back(b[i]);
        b[i] = b.back();
        b.pop_back();
      } else {
        ++i;  // a later lap of this bucket
      }
    }
    if (b.empty()) clear_occupied(tick & bucket_mask_);
    if (!ready_.empty()) {
      wheel_count_ -= ready_.size();
      cur_tick_ = tick;
      sort_ready();
      return true;
    }
  }
  return false;
}

void BatchSimulator::refill_ready() {
  ready_.clear();
  ready_pos_ = 0;
  for (;;) {
    if (wheel_count_ == 0) {
      // Everything queued sits in the far-list: jump the wheel straight
      // to its earliest tick instead of scanning empty buckets.
      cur_tick_ = tick_of(overflow_.front().t_ps);
    }
    // Migrate far-list keys that fell inside the horizon as the wheel
    // turned. They all have ticks > cur_tick_ of any previous serve, so
    // nothing is migrated late.
    while (!overflow_.empty() &&
           tick_of(overflow_.front().t_ps) < cur_tick_ + num_buckets_) {
      std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
      const HeapEvent ev = overflow_.back();
      overflow_.pop_back();
      bucket_insert(ev);
    }
    if (fast_refill()) return;
    if (cold_refill()) return;
    if (wheel_count_ > 0) {
      // Stranded beyond one rotation (possible only after a backward
      // re-anchor): jump to the earliest bucket resident. Cold path.
      std::uint64_t min_tick = ~std::uint64_t{0};
      for (const std::vector<HeapEvent>& b : buckets_)
        for (const HeapEvent& ev : b)
          min_tick = std::min(min_tick, tick_of(ev.t_ps));
      cur_tick_ = min_tick;
    }
    // else: loop re-anchors on the far-list and migrates.
  }
}

// The word form of the scalar inertial-filtering schedule(): per lane of
// `mask`, drop a same-value pending, cancel (glitch) a contradicting
// one, and queue a new edge iff the wanted value differs from the
// committed one. Identical per-lane outcomes to
// CompiledSimulator::schedule / Simulator::schedule by construction.
void BatchSimulator::schedule_word(std::uint32_t net, std::uint64_t want,
                                   std::uint64_t mask, double t_ps) {
  PendState& ps = pend_[net];
  const std::uint64_t pend = ps.mask;
  // Nearly half of all evaluations re-derive the value the net already
  // holds with nothing in flight: no edge to queue, none to cancel.
  // Return before the update path dirties the net's pending line.
  if (((want ^ cur_[net]) & mask) == 0 && (pend & mask) == 0) return;
  const std::uint64_t val = ps.value;
  const std::uint64_t have = pend & mask;
  std::uint64_t cancel = have & (val ^ want);  // pending, different value
  const std::uint64_t need =
      ((mask & ~have) | cancel) & (want ^ cur_[net]);
  ps.mask = (pend & ~cancel) | need;
  if (need != 0) ps.value = (val & ~need) | (want & need);
  // Computed from the pre-update state: lanes pending outside the inline
  // group can only live in spill_[net].
  const bool had_spill = (pend & ~ps.g0_mask) != 0;
  if (cancel != 0) {
    // Retract the cancelled lanes from their old time groups; an emptied
    // group dies silently and its heap key pops as a tombstone.
    ps.g0_mask &= ~cancel;
    if (had_spill) {
      std::vector<PendGroup>& sp = spill_[net];
      for (std::size_t i = 0; i < sp.size();) {
        sp[i].mask &= ~cancel;
        if (sp[i].mask == 0) {
          sp[i] = sp.back();
          sp.pop_back();
        } else {
          ++i;
        }
      }
    }
    std::uint64_t m = cancel;
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
      m &= m - 1;
      ++glitches_[lane];
    }
  }
  if (need != 0) {
    if (ps.g0_mask != 0 && ps.g0_t == t_ps) {
      ps.g0_mask |= need;
      return;
    }
    if (had_spill) {
      for (PendGroup& g : spill_[net]) {
        if (g.t_ps == t_ps) {
          g.mask |= need;
          return;
        }
      }
    }
    if (ps.g0_mask == 0) {
      ps.g0_t = t_ps;
      ps.g0_mask = need;
    } else {
      spill_[net].push_back(PendGroup{t_ps, need});
    }
    push_key(t_ps, net);  // one key per group: born here, popped once
  }
}

void BatchSimulator::evaluate_cell(std::uint32_t cell, double t_ps,
                                   std::uint64_t mask) {
  const CompiledNetlist& cn = *cn_;
  const CellKind k = cn.kind[cell];
  const std::uint32_t out_net = cn.output[cell];
  if (k == CellKind::Input || k == CellKind::Output || out_net == kNoNet)
    return;

  // Word truth tables — the per-lane projection must mirror
  // netlist::evaluate() exactly, like the scalar kernels' inlined
  // switch.
  const std::uint32_t lo = cn.fanin_offset[cell];
  const std::uint32_t hi = cn.fanin_offset[cell + 1];
  const auto in = [&](std::uint32_t i) { return cur_[cn.fanin_net[lo + i]]; };
  const auto all = [&](std::uint32_t a, std::uint32_t b) {
    std::uint64_t w = kAllLanes;
    for (std::uint32_t i = a; i < b; ++i) w &= cur_[cn.fanin_net[i]];
    return w;
  };
  const auto any = [&](std::uint32_t a, std::uint32_t b) {
    std::uint64_t w = 0;
    for (std::uint32_t i = a; i < b; ++i) w |= cur_[cn.fanin_net[i]];
    return w;
  };
  // Muller word formula: set where all inputs high, hold where some are.
  const auto muller = [&](std::uint32_t a, std::uint32_t b,
                          std::uint64_t prev) {
    return all(a, b) | (prev & any(a, b));
  };

  const std::uint64_t prev = cur_[out_net];
  std::uint64_t out = 0;
  switch (k) {
    case CellKind::Input:
    case CellKind::Output:
      return;
    case CellKind::Buf:
      out = in(0);
      break;
    case CellKind::Inv:
      out = ~in(0);
      break;
    case CellKind::And2:
    case CellKind::And3:
      out = all(lo, hi);
      break;
    case CellKind::Or2:
    case CellKind::Or3:
    case CellKind::Or4:
      out = any(lo, hi);
      break;
    case CellKind::Nor2:
    case CellKind::Nor3:
    case CellKind::Nor4:
      out = ~any(lo, hi);
      break;
    case CellKind::Nand2:
    case CellKind::Nand3:
      out = ~all(lo, hi);
      break;
    case CellKind::Xor2:
      out = in(0) ^ in(1);
      break;
    case CellKind::Xnor2:
      out = ~(in(0) ^ in(1));
      break;
    case CellKind::Muller2:
    case CellKind::Muller3:
    case CellKind::Muller4:
      out = muller(lo, hi, prev);
      break;
    case CellKind::Muller2R:
    case CellKind::Muller3R:
      // Last pin is the active-high reset: it forces the output low.
      out = muller(lo, hi - 1, prev) & ~cur_[cn.fanin_net[hi - 1]];
      break;
  }

  schedule_word(out_net, out, mask, t_ps + cn.delay_ps[cell]);
}

void BatchSimulator::commit(double t_ps, std::uint32_t net,
                            std::uint64_t live) {
  const CompiledNetlist& cn = *cn_;
  const std::uint64_t val = pend_[net].value;
  cur_[net] = (cur_[net] & ~live) | (val & live);
  ++merged_commits_;
  lane_commits_ += static_cast<std::uint64_t>(std::popcount(live));
  std::uint64_t m = live;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    now_[lane] = t_ps;
    ++transitions_[lane];
  }
  if (sink_ != nullptr)
    sink_->on_batch_transition(t_ps, net, live, val & live,
                               bn_->net_slew_ps()[net]);
  const std::uint32_t lo = cn.fanout_offset[net];
  const std::uint32_t hi = cn.fanout_offset[net + 1];
  for (std::uint32_t i = lo; i < hi; ++i)
    evaluate_cell(cn.fanout_cell[i], t_ps, live);
}

std::size_t BatchSimulator::run_until_stable(std::size_t max_events) {
  std::size_t committed = 0;
  while (queue_size_ > 0) {
    if (ready_pos_ >= ready_.size()) refill_ready();
    const HeapEvent ev = ready_[ready_pos_++];
    --queue_size_;
    // Merge duplicate keys (a group can die to cancellation and a new
    // one be born at the same (t, net), each pushing a key). Duplicates
    // share a tick, so they sit adjacent in the sorted ready batch.
    while (ready_pos_ < ready_.size() && ready_[ready_pos_].t_ps == ev.t_ps &&
           ready_[ready_pos_].net == ev.net) {
      ++ready_pos_;
      --queue_size_;
    }
    // Live lanes: the group scheduled for exactly this time. A missing
    // group means every lane of it was cancelled or rescheduled — the
    // key is a tombstone, like the scalar engines' stale-seq check.
    PendState& ps = pend_[ev.net];
    std::uint64_t live = 0;
    if (ps.g0_mask != 0 && ps.g0_t == ev.t_ps) {
      live = ps.g0_mask;
      ps.g0_mask = 0;
    } else if ((ps.mask & ~ps.g0_mask) != 0) {
      std::vector<PendGroup>& sp = spill_[ev.net];
      for (std::size_t i = 0; i < sp.size(); ++i) {
        if (sp[i].t_ps == ev.t_ps) {
          live = sp[i].mask;
          sp[i] = sp.back();
          sp.pop_back();
          break;
        }
      }
    }
    if (live == 0) continue;
    ps.mask &= ~live;
    commit(ev.t_ps, ev.net, live);
    if (++committed > max_events)
      throw std::runtime_error(
          "BatchSimulator::run_until_stable: event budget exhausted "
          "(oscillating netlist?)");
  }
  return committed;
}

// ---- BatchFourPhaseEnv ------------------------------------------------------

BatchFourPhaseEnv::BatchFourPhaseEnv(BatchSimulator& sim, EnvSpec spec)
    : sim_(&sim), spec_(std::move(spec)) {
  if (!spec_.strict)
    throw std::invalid_argument(
        "BatchFourPhaseEnv: tolerant handshakes (fault campaigns) are a "
        "scalar-engine feature — the batch environment is strict-only");
  for (netlist::ChannelId ch : spec_.inputs)
    assert(ch < sim_->netlist().num_channels());
  for (netlist::ChannelId ch : spec_.outputs)
    assert(ch < sim_->netlist().num_channels());
}

void BatchFourPhaseEnv::drive_grouped(NetId net, bool value,
                                      const double* t_ps,
                                      std::uint64_t mask) {
  while (mask != 0) {
    const unsigned lead = static_cast<unsigned>(std::countr_zero(mask));
    const double t = t_ps[lead];
    std::uint64_t group = 0;
    std::uint64_t m = mask;
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
      m &= m - 1;
      if (t_ps[lane] == t) group |= lane_bit(lane);
    }
    sim_->drive(net, value, t, group);
    mask &= ~group;
  }
}

void BatchFourPhaseEnv::apply_reset(double pulse_ps) {
  // Lane-uniform replica of FourPhaseEnv::apply_reset across all 64
  // lanes (so the saved epoch serves full and partial blocks alike).
  double t[kBatchLanes];
  const auto now_times = [&] {
    for (std::size_t l = 0; l < kBatchLanes; ++l) t[l] = sim_->now(l);
  };
  now_times();
  if (spec_.reset != kNoNet) drive_grouped(spec_.reset, true, t, kAllLanes);
  sim_->initialize(kAllLanes);
  sim_->run_until_stable();
  if (spec_.reset != kNoNet) {
    now_times();
    for (double& x : t) x += pulse_ps;
    drive_grouped(spec_.reset, false, t, kAllLanes);
    sim_->run_until_stable();
  }
  now_times();
  for (netlist::ChannelId ch : spec_.inputs)
    for (NetId rail : sim_->netlist().channel(ch).rails)
      drive_grouped(rail, false, t, kAllLanes);
  for (NetId ack : spec_.acks_to_block) drive_grouped(ack, false, t, kAllLanes);
  sim_->run_until_stable();
}

int BatchFourPhaseEnv::read_channel(netlist::ChannelId ch,
                                    std::size_t lane) const {
  const netlist::Channel& c = sim_->netlist().channel(ch);
  int value = -1;
  for (std::size_t r = 0; r < c.rails.size(); ++r) {
    if (sim_->value(c.rails[r], lane)) {
      if (value != -1) return -1;  // two rails high: protocol violation
      value = static_cast<int>(r);
    }
  }
  return value;
}

void BatchFourPhaseEnv::send_into(
    std::span<const std::vector<int>* const> values, BatchCycleResult& res) {
  const std::size_t lanes = values.size();
  assert(lanes >= 1 && lanes <= kBatchLanes);
  const std::uint64_t mask =
      lanes == kBatchLanes ? kAllLanes : (lane_bit(lanes) - 1);

  res.lanes = lanes;
  res.num_outputs = spec_.outputs.size();
  res.outputs.assign(lanes * res.num_outputs, -1);

  std::size_t before[kBatchLanes];
  double t[kBatchLanes];
  for (std::size_t l = 0; l < lanes; ++l) {
    assert(values[l] != nullptr &&
           values[l]->size() == spec_.inputs.size() &&
           "send: one value per input channel");
    before[l] = sim_->transition_count(l);
    t[l] = next_cycle_start(l);
    res.t_start[l] = t[l];
    sim_->advance_to(t[l], lane_bit(static_cast<unsigned>(l)));
  }

  // Phase 1: drive valid data — per channel, the lanes picking the same
  // rail go out as one masked word.
  for (std::size_t i = 0; i < spec_.inputs.size(); ++i) {
    const netlist::Channel& ch = sim_->netlist().channel(spec_.inputs[i]);
    for (std::size_t r = 0; r < ch.rails.size(); ++r) {
      std::uint64_t m = 0;
      for (std::size_t l = 0; l < lanes; ++l)
        if (static_cast<std::size_t>((*values[l])[i]) == r)
          m |= lane_bit(static_cast<unsigned>(l));
      if (m != 0) drive_grouped(ch.rails[r], true, t, m);
    }
  }
  sim_->run_until_stable();
  for (std::size_t l = 0; l < lanes; ++l) {
    for (std::size_t i = 0; i < res.num_outputs; ++i) {
      const int v = read_channel(spec_.outputs[i], l);
      if (v < 0)
        throw std::runtime_error(
            "BatchFourPhaseEnv: outputs did not become valid "
            "(four-phase protocol failure)");
      res.outputs[l * res.num_outputs + i] = v;
    }
    res.t_valid[l] = sim_->now(l);
  }

  // Next phase-drive time per lane — the exact expression of
  // FourPhaseEnv::send_into's phase_time (a configured tester grid
  // re-converges the lanes' phase times, turning the RTZ wavefront back
  // into full-width word drives).
  const auto phase_time = [&](double now) {
    const double tt = now + spec_.phase_gap_ps;
    if (spec_.phase_align_ps <= 0.0) return tt;
    return std::ceil(tt / spec_.phase_align_ps) * spec_.phase_align_ps;
  };

  // Phase 2: consumer acknowledges.
  for (std::size_t l = 0; l < lanes; ++l) t[l] = phase_time(sim_->now(l));
  for (NetId ack : spec_.acks_to_block) drive_grouped(ack, true, t, mask);
  sim_->run_until_stable();

  // Phase 3: return to zero.
  for (std::size_t l = 0; l < lanes; ++l) t[l] = phase_time(sim_->now(l));
  for (std::size_t i = 0; i < spec_.inputs.size(); ++i) {
    const netlist::Channel& ch = sim_->netlist().channel(spec_.inputs[i]);
    for (std::size_t r = 0; r < ch.rails.size(); ++r) {
      std::uint64_t m = 0;
      for (std::size_t l = 0; l < lanes; ++l)
        if (static_cast<std::size_t>((*values[l])[i]) == r)
          m |= lane_bit(static_cast<unsigned>(l));
      if (m != 0) drive_grouped(ch.rails[r], false, t, m);
    }
  }
  sim_->run_until_stable();
  for (std::size_t l = 0; l < lanes; ++l) {
    for (netlist::ChannelId ch : spec_.outputs)
      for (NetId rail : sim_->netlist().channel(ch).rails)
        if (sim_->value(rail, l))
          throw std::runtime_error(
              "BatchFourPhaseEnv: outputs did not return to zero "
              "(four-phase protocol failure)");
    res.t_empty[l] = sim_->now(l);
  }

  // Phase 4: release acknowledge.
  for (std::size_t l = 0; l < lanes; ++l) t[l] = phase_time(sim_->now(l));
  for (NetId ack : spec_.acks_to_block) drive_grouped(ack, false, t, mask);
  sim_->run_until_stable();
  for (std::size_t l = 0; l < lanes; ++l) {
    res.t_end[l] = sim_->now(l);
    if (res.t_end[l] - res.t_start[l] >= spec_.period_ps)
      throw std::runtime_error(
          "FourPhaseEnv: cycle exceeded the period; increase "
          "EnvSpec::period_ps");
    res.transitions[l] = sim_->transition_count(l) - before[l];
  }
}

}  // namespace qdi::sim
