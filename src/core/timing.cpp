#include "qdi/core/timing.hpp"

#include <algorithm>

#include "qdi/core/formal_model.hpp"

namespace qdi::core {

using netlist::CellId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

TimingReport analyze_timing(const netlist::Graph& g, const sim::DelayModel& dm) {
  const netlist::Netlist& nl = g.netlist();
  const std::vector<double> net_arr = arrival_times_ps(g, dm);

  TimingReport rep;
  rep.level_arrival_ps.assign(static_cast<std::size_t>(g.num_levels()) + 1, 0.0);

  // Find the slowest real-gate output.
  NetId worst = kNoNet;
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const netlist::Cell& cell = nl.cell(c);
    if (netlist::is_pseudo(cell.kind) || cell.output == kNoNet) continue;
    const int lvl = g.level(c);
    if (lvl >= 0 && lvl < static_cast<int>(rep.level_arrival_ps.size()))
      rep.level_arrival_ps[static_cast<std::size_t>(lvl)] =
          std::max(rep.level_arrival_ps[static_cast<std::size_t>(lvl)],
                   net_arr[cell.output]);
    if (worst == kNoNet || net_arr[cell.output] > net_arr[worst])
      worst = cell.output;
  }
  if (worst == kNoNet) return rep;
  rep.critical_arrival_ps = net_arr[worst];

  // Walk the critical path backwards: from the worst gate, repeatedly
  // pick the predecessor (non-feedback) with the latest arrival.
  CellId c = nl.net(worst).driver;
  while (c != kNoCell) {
    const netlist::Cell& cell = nl.cell(c);
    PathStep step;
    step.cell = c;
    step.cell_name = cell.name;
    step.kind = std::string(netlist::name(cell.kind));
    step.level = g.level(c);
    step.arrival_ps = cell.output != kNoNet ? net_arr[cell.output] : 0.0;
    step.cap_ff = cell.output != kNoNet ? nl.net(cell.output).cap_ff : 0.0;
    rep.critical_path.push_back(step);
    if (cell.kind == netlist::CellKind::Input) break;

    CellId next = kNoCell;
    double best = -1.0;
    for (NetId in : cell.inputs) {
      const CellId drv = nl.net(in).driver;
      if (drv == kNoCell || g.level(drv) > g.level(c)) continue;  // feedback
      if (net_arr[in] > best) {
        best = net_arr[in];
        next = drv;
      }
    }
    c = next;
  }
  std::reverse(rep.critical_path.begin(), rep.critical_path.end());

  // First-order four-phase cycle estimate: set wave + reset wave through
  // the same depth, plus two acknowledge traversals approximated by the
  // completion level's arrival (the last level of the path).
  rep.cycle_estimate_ps = 2.0 * rep.critical_arrival_ps +
                          2.0 * dm.delay_ps(netlist::CellKind::Muller2, 8.0);
  return rep;
}

util::Table timing_table(const TimingReport& report) {
  util::Table t({"level", "cell", "kind", "arrival (ps)", "load (fF)"});
  t.set_precision(1);
  for (const PathStep& s : report.critical_path) {
    t.add_row({std::to_string(s.level), s.cell_name, s.kind,
               t.format_double(s.arrival_ps), t.format_double(s.cap_ff)});
  }
  return t;
}

}  // namespace qdi::core
