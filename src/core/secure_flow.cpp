#include "qdi/core/secure_flow.hpp"

#include <algorithm>

#include "qdi/util/log.hpp"

namespace qdi::core {

std::pair<std::size_t, double> repair_rail_caps(netlist::Netlist& nl,
                                                double target_da) {
  std::size_t touched = 0;
  double added = 0.0;
  for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch) {
    const netlist::Channel& c = nl.channel(ch);
    // Pad every rail up to C_max / (1 + target): after padding,
    // dA = (C_max - C_min') / C_min' <= target for all pairs.
    double cap_max = 0.0;
    for (netlist::NetId r : c.rails)
      cap_max = std::max(cap_max, nl.net(r).cap_ff);
    const double floor_cap = cap_max / (1.0 + target_da);
    bool channel_touched = false;
    for (netlist::NetId r : c.rails) {
      netlist::Net& net = nl.net(r);
      if (net.cap_ff < floor_cap) {
        added += floor_cap - net.cap_ff;
        net.cap_ff = floor_cap;
        channel_touched = true;
      }
    }
    if (channel_touched) ++touched;
  }
  return {touched, added};
}

FlowResult run_secure_flow(netlist::Netlist& nl, const FlowOptions& opt) {
  FlowResult result;
  pnr::PlacerOptions placer = opt.placer;

  for (int iter = 0; iter < std::max(1, opt.max_iterations); ++iter) {
    result.iterations_used = iter + 1;
    result.placement = pnr::place(nl, placer);
    result.extraction = pnr::extract(nl, result.placement, opt.extraction);
    result.criteria = evaluate_criterion(nl);
    result.max_da = max_dA(result.criteria);
    result.mean_da = mean_dA(result.criteria);
    result.accepted = result.max_da <= opt.max_da_threshold;
    util::log_info("secure_flow: iteration ", iter + 1, " seed ", placer.seed,
                   " max dA = ", result.max_da);
    if (result.accepted) break;
    placer.seed += 1;  // "multiple random runs" — retry the lottery
  }

  if (opt.repair && !result.accepted) {
    auto [touched, added] = repair_rail_caps(nl, opt.repair_target_da);
    result.repaired_channels = touched;
    result.repair_added_cap_ff = added;
    result.criteria = evaluate_criterion(nl);
    result.max_da = max_dA(result.criteria);
    result.mean_da = mean_dA(result.criteria);
    result.accepted = result.max_da <= opt.max_da_threshold;
  }
  return result;
}

}  // namespace qdi::core
