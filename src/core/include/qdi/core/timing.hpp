// Static timing reports built on the formal model's arrival times: the
// critical path of a block (the Nc chain of section III, with physical
// delays), per-level timing, and the handshake cycle-time estimate the
// self-timed design "clocks" itself with (fa of eq. 2).
#pragma once

#include <string>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/sim/delay_model.hpp"
#include "qdi/util/table.hpp"

namespace qdi::core {

struct PathStep {
  netlist::CellId cell = netlist::kNoCell;
  std::string cell_name;
  std::string kind;
  int level = 0;
  double arrival_ps = 0.0;
  double cap_ff = 0.0;  ///< load the step drives
};

struct TimingReport {
  double critical_arrival_ps = 0.0;
  std::vector<PathStep> critical_path;      ///< input -> slowest output
  std::vector<double> level_arrival_ps;     ///< max arrival per level
  /// Four-phase cycle-time estimate: data wave + RTZ wave + two
  /// acknowledge hops (a standard first-order QDI cycle model).
  double cycle_estimate_ps = 0.0;
};

/// Analyze the netlist under the delay model (uses the netlist's current
/// capacitance annotations — run it before and after extraction to see
/// the physical-design impact).
TimingReport analyze_timing(const netlist::Graph& g, const sim::DelayModel& dm);

/// Render the critical path as a table.
util::Table timing_table(const TimingReport& report);

}  // namespace qdi::core
