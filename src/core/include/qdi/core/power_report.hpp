// Per-block power accounting: attributes the measured switching activity
// of a simulation run to the hierarchical blocks of the design and
// evaluates eq. 3 per block. This is the designer-side "where does the
// current go" view that complements the criterion's "where does the
// *difference* go".
#pragma once

#include <string>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/simulator.hpp"
#include "qdi/util/table.hpp"

namespace qdi::core {

struct BlockPower {
  std::string block;
  std::size_t transitions = 0;
  double charge_fc = 0.0;   ///< supply charge attributed to the block
  double share = 0.0;       ///< fraction of the total charge
};

/// Attribute every logged transition to the driving cell's block (the
/// leading `depth` components of its hierarchical path; environment-
/// driven nets are attributed to "(environment)").
std::vector<BlockPower> block_power(const netlist::Netlist& nl,
                                    std::span<const sim::Transition> log,
                                    const power::PowerModelParams& pm,
                                    int depth = 2);

util::Table block_power_table(const std::vector<BlockPower>& rows);

}  // namespace qdi::core
