// The paper's formal electrical model of secured QDI blocks (section III)
// and its DPA application (section IV):
//
//   eq. 1-2: Pd = η·C·Vdd²·f     (dynamic power, f -> fa in QDI)
//   eq. 3:   Pdb = Σ_{i=1..Nt} η·fa·C_i·Vdd²
//   eq. 4:   I(t) = C·dV/dt
//   eq. 5:   Pdc(t) = Σ_{i=1..Nc} Σ_{j=1..Nij} I_ij(t) + Pdn(t)
//   eq. 10-11: A0/A1 as per-class sums of gate currents
//   eq. 12:  S[t] ≈ V · Σ ±(C_k/Δt_k)  — the bias is set by per-path
//            capacitance (and capacitance-dependent timing) differences.
//
// `predict_class_profile` evaluates the right-hand side of eq. 5 for a
// given switching set using static longest-path arrival times — a purely
// analytical profile requiring no event simulation. Comparing two class
// profiles implements eq. 12; the eq12_model_vs_sim bench validates the
// prediction against the event-driven + synthesized-trace pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "qdi/netlist/graph.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/delay_model.hpp"
#include "qdi/sim/simulator.hpp"

namespace qdi::core {

/// Static block profile: the (Nc, Nij) structure of eq. 5 as read off the
/// annotated graph (fig. 5: "Nt, Nc and Nij are determined by a simple
/// analysis of a graphic representation of the block").
struct BlockProfile {
  int nc = 0;                        ///< logic levels
  std::vector<std::size_t> nij_max;  ///< static level occupancy (upper bound)
  std::size_t gates = 0;             ///< real gates in the block
};

BlockProfile analyze_block(const netlist::Graph& g);

/// Measured switching activity from a simulation transition log restricted
/// to [t0, t1): Nt and the per-level firing counts N_ij.
struct MeasuredActivity {
  std::size_t nt = 0;
  std::vector<std::size_t> nij;  ///< index 0 unused; 1..Nc per level
};

MeasuredActivity measure_activity(const netlist::Graph& g,
                                  std::span<const sim::Transition> log,
                                  double t0_ps, double t1_ps);

// --- eq. 1-3: average power estimates -------------------------------------

/// Pd = η·C·Vdd²·f for one gate (C in fF, f in MHz, result in nW —
/// fF·V²·MHz = nW).
double gate_dynamic_power_nw(double cap_ff, double vdd, double f_mhz,
                             double activity = 1.0) noexcept;

/// Eq. 3: block power at acknowledge frequency fa, summing every net's
/// annotated capacitance (each net switches twice per four-phase cycle:
/// set + return-to-zero, i.e. activity 2·fa on active nets).
double block_dynamic_power_nw(const netlist::Netlist& nl, double vdd,
                              double fa_mhz, double activity = 1.0);

// --- eq. 4-6 / 10-12: analytic current profiles ---------------------------

/// Longest-path arrival time (ps) of every net's driving gate output,
/// using the levelized graph and the delay model (feedback edges cut).
std::vector<double> arrival_times_ps(const netlist::Graph& g,
                                     const sim::DelayModel& dm);

/// Analytic current profile of one switching class: each net in `firing`
/// contributes a charge pulse C·Vdd wide Δt(C) ending at its arrival time.
power::PowerTrace predict_class_profile(const netlist::Graph& g,
                                        const sim::DelayModel& dm,
                                        const power::PowerModelParams& pm,
                                        std::span<const netlist::NetId> firing,
                                        double window_ps);

/// Eq. 12: predicted DPA bias T[t] = profile(class0) - profile(class1).
std::vector<double> predict_bias(const netlist::Graph& g,
                                 const sim::DelayModel& dm,
                                 const power::PowerModelParams& pm,
                                 std::span<const netlist::NetId> class0,
                                 std::span<const netlist::NetId> class1,
                                 double window_ps);

}  // namespace qdi::core
