// Channel leakage scoring — a refinement of the raw criterion dA using
// the full eq. 12 of the paper: the bias contribution of a rail pair is
// driven by the difference of C/Δt terms (instantaneous current) *and*
// by the charge difference C·Vdd (integrated current). Ranking channels
// by the physical score rather than the dimensionless dA prioritizes
// repair effort where the attacker actually gains signal.
#pragma once

#include <string>
#include <vector>

#include "qdi/core/criterion.hpp"
#include "qdi/power/synth.hpp"
#include "qdi/sim/delay_model.hpp"

namespace qdi::core {

struct ChannelLeakage {
  netlist::ChannelId id = 0;
  std::string name;
  double dA = 0.0;
  /// |C_hi/Δt(C_hi) − C_lo/Δt(C_lo)| · Vdd — the peak-current term of
  /// eq. 12, in µA.
  double peak_current_ua = 0.0;
  /// |C_hi − C_lo| · Vdd — the charge term, in fC.
  double charge_fc = 0.0;
  /// Combined score used for ranking: peak term plus charge term spread
  /// over its own Δt (so both terms share units of µA).
  double score_ua = 0.0;
};

/// Score one channel from its worst rail pair.
ChannelLeakage channel_leakage(const netlist::Netlist& nl,
                               netlist::ChannelId ch,
                               const sim::DelayModel& dm,
                               const power::PowerModelParams& pm);

/// Score and rank every registered channel, highest score first.
std::vector<ChannelLeakage> rank_leakage(const netlist::Netlist& nl,
                                         const sim::DelayModel& dm,
                                         const power::PowerModelParams& pm);

util::Table leakage_table(const std::vector<ChannelLeakage>& rows,
                          std::size_t top_k);

}  // namespace qdi::core
