// Section VI: the per-channel dissymmetry criterion
//
//     dA = |C_l0 - C_l1| / min(C_l0, C_l1)
//
// "the lower the value of dA, the more resistant to DPA the chip is."
// For 1-of-N channels the worst rail pair is reported. The criterion is
// evaluated over the netlist's registered channel list after extraction
// back-annotated real capacitances.
#pragma once

#include <string>
#include <vector>

#include "qdi/netlist/netlist.hpp"
#include "qdi/util/table.hpp"

namespace qdi::core {

struct ChannelCriterion {
  netlist::ChannelId id = 0;
  std::string name;
  double cap_min_ff = 0.0;  ///< smaller rail capacitance of the worst pair
  double cap_max_ff = 0.0;  ///< larger rail capacitance of the worst pair
  double dA = 0.0;
};

/// dA between two rail capacitances.
double dissymmetry(double cap0_ff, double cap1_ff) noexcept;

/// Criterion of one channel (worst pair over its rails).
ChannelCriterion channel_criterion(const netlist::Netlist& nl,
                                   netlist::ChannelId ch);

/// All channels, in registry order.
std::vector<ChannelCriterion> evaluate_criterion(const netlist::Netlist& nl);

/// The k most critical channels (highest dA first) — Table 2's rows.
std::vector<ChannelCriterion> most_critical(std::vector<ChannelCriterion> all,
                                            std::size_t k);

double max_dA(const std::vector<ChannelCriterion>& all) noexcept;
double mean_dA(const std::vector<ChannelCriterion>& all) noexcept;

/// Render a Table-2-style report.
util::Table criterion_table(const std::vector<ChannelCriterion>& rows,
                            const std::string& version_label);

/// Per-block aggregation (blocks per fig. 8's legend): channels are
/// grouped by the leading `depth` components of their hierarchical name.
struct BlockCriterion {
  std::string block;
  std::size_t channels = 0;
  double max_da = 0.0;
  double mean_da = 0.0;
};

std::vector<BlockCriterion> criterion_by_block(
    const std::vector<ChannelCriterion>& rows, int depth = 2);

util::Table block_criterion_table(const std::vector<BlockCriterion>& rows);

}  // namespace qdi::core
