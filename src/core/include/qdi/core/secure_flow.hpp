// The complete DPA-aware design flow the paper specifies (abstract: "a
// complete design flow is specified to minimize the information
// leakage"):
//
//   1. place the netlist (flat, or hierarchical with constrained block
//      regions — section VI's methodology),
//   2. extract net capacitances and back-annotate the graph,
//   3. evaluate the dissymmetry criterion dA over every registered
//      dual-rail channel,
//   4. accept the layout if max dA is below the threshold, else iterate
//      with a new seed (the flat flow rarely converges; the hierarchical
//      flow does — that asymmetry *is* the paper's result),
//   5. optionally run the rail-capacitance repair pass (an extension the
//      paper's conclusion points to: controlling net capacitances
//      directly), which pads the lighter rail of each offending channel
//      up to its sibling (modelling post-route capacitive trimming /
//      dummy-metal fill).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qdi/core/criterion.hpp"
#include "qdi/netlist/netlist.hpp"
#include "qdi/pnr/extraction.hpp"
#include "qdi/pnr/placement.hpp"

namespace qdi::core {

struct FlowOptions {
  pnr::PlacerOptions placer{};
  pnr::ExtractionParams extraction{};
  double max_da_threshold = 0.15;  ///< acceptance bound on the criterion
  int max_iterations = 1;          ///< re-place with seed+1 on rejection
  bool repair = false;             ///< run the rail-cap repair pass
  double repair_target_da = 0.05;  ///< repair until every channel <= this
};

struct FlowResult {
  pnr::Placement placement;
  pnr::ExtractionSummary extraction;
  std::vector<ChannelCriterion> criteria;  ///< every channel, registry order
  double max_da = 0.0;
  double mean_da = 0.0;
  bool accepted = false;
  int iterations_used = 0;
  std::size_t repaired_channels = 0;
  double repair_added_cap_ff = 0.0;  ///< silicon cost of the repair pass
};

/// Run the flow on `nl` (net caps are back-annotated in place).
FlowResult run_secure_flow(netlist::Netlist& nl, const FlowOptions& opt);

/// Repair pass: for every channel with dA above `target_da`, pad the
/// lighter rail's capacitance so the pair meets the target exactly.
/// Returns (channels touched, total added capacitance).
std::pair<std::size_t, double> repair_rail_caps(netlist::Netlist& nl,
                                                double target_da);

}  // namespace qdi::core
