#include "qdi/core/criterion.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

namespace qdi::core {

double dissymmetry(double cap0_ff, double cap1_ff) noexcept {
  const double lo = std::min(cap0_ff, cap1_ff);
  const double hi = std::max(cap0_ff, cap1_ff);
  if (lo <= 0.0) return hi > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  return (hi - lo) / lo;
}

ChannelCriterion channel_criterion(const netlist::Netlist& nl,
                                   netlist::ChannelId ch) {
  const netlist::Channel& c = nl.channel(ch);
  ChannelCriterion r;
  r.id = ch;
  r.name = c.name;
  // Worst pair over all rails (dual-rail: the single pair).
  for (std::size_t i = 0; i < c.rails.size(); ++i) {
    for (std::size_t j = i + 1; j < c.rails.size(); ++j) {
      const double ci = nl.net(c.rails[i]).cap_ff;
      const double cj = nl.net(c.rails[j]).cap_ff;
      const double d = dissymmetry(ci, cj);
      if (d >= r.dA) {
        r.dA = d;
        r.cap_min_ff = std::min(ci, cj);
        r.cap_max_ff = std::max(ci, cj);
      }
    }
  }
  return r;
}

std::vector<ChannelCriterion> evaluate_criterion(const netlist::Netlist& nl) {
  std::vector<ChannelCriterion> out;
  out.reserve(nl.num_channels());
  for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch)
    out.push_back(channel_criterion(nl, ch));
  return out;
}

std::vector<ChannelCriterion> most_critical(std::vector<ChannelCriterion> all,
                                            std::size_t k) {
  std::sort(all.begin(), all.end(),
            [](const ChannelCriterion& a, const ChannelCriterion& b) {
              if (a.dA != b.dA) return a.dA > b.dA;
              return a.name < b.name;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

double max_dA(const std::vector<ChannelCriterion>& all) noexcept {
  double m = 0.0;
  for (const auto& c : all) m = std::max(m, c.dA);
  return m;
}

double mean_dA(const std::vector<ChannelCriterion>& all) noexcept {
  if (all.empty()) return 0.0;
  double s = 0.0;
  for (const auto& c : all) s += c.dA;
  return s / static_cast<double>(all.size());
}

std::vector<BlockCriterion> criterion_by_block(
    const std::vector<ChannelCriterion>& rows, int depth) {
  auto block_of = [depth](const std::string& name) {
    std::size_t pos = 0;
    for (int d = 0; d < depth; ++d) {
      const std::size_t next = name.find('/', pos);
      if (next == std::string::npos) return name;
      pos = next + 1;
    }
    return name.substr(0, pos == 0 ? std::string::npos : pos - 1);
  };

  std::map<std::string, BlockCriterion> agg;
  for (const ChannelCriterion& c : rows) {
    BlockCriterion& b = agg[block_of(c.name)];
    if (b.block.empty()) b.block = block_of(c.name);
    ++b.channels;
    b.max_da = std::max(b.max_da, c.dA);
    b.mean_da += c.dA;  // running sum; divided below
  }
  std::vector<BlockCriterion> out;
  out.reserve(agg.size());
  for (auto& [key, b] : agg) {
    (void)key;
    if (b.channels > 0) b.mean_da /= static_cast<double>(b.channels);
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end(),
            [](const BlockCriterion& a, const BlockCriterion& b) {
              return a.max_da > b.max_da;
            });
  return out;
}

util::Table block_criterion_table(const std::vector<BlockCriterion>& rows) {
  util::Table t({"block", "channels", "max dA", "mean dA"});
  t.set_precision(3);
  for (const BlockCriterion& b : rows)
    t.add_row({b.block, std::to_string(b.channels), t.format_double(b.max_da),
               t.format_double(b.mean_da)});
  return t;
}

util::Table criterion_table(const std::vector<ChannelCriterion>& rows,
                            const std::string& version_label) {
  util::Table t({"version", "channel", "C_rail_lo (fF)", "C_rail_hi (fF)", "dA"});
  t.set_precision(2);
  for (const auto& r : rows) {
    t.add_row({version_label, r.name, t.format_double(r.cap_min_ff),
               t.format_double(r.cap_max_ff), t.format_double(r.dA)});
  }
  return t;
}

}  // namespace qdi::core
