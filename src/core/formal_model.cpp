#include "qdi/core/formal_model.hpp"

#include <algorithm>

namespace qdi::core {

using netlist::CellId;
using netlist::kNoCell;
using netlist::kNoNet;
using netlist::NetId;

BlockProfile analyze_block(const netlist::Graph& g) {
  BlockProfile p;
  p.nc = g.num_levels();
  p.nij_max = g.level_occupancy();
  p.gates = g.netlist().num_gates();
  return p;
}

MeasuredActivity measure_activity(const netlist::Graph& g,
                                  std::span<const sim::Transition> log,
                                  double t0_ps, double t1_ps) {
  MeasuredActivity a;
  a.nij.assign(static_cast<std::size_t>(g.num_levels()) + 1, 0);
  for (const sim::Transition& t : log) {
    if (t.t_ps < t0_ps || t.t_ps >= t1_ps) continue;
    const CellId driver = g.netlist().net(t.net).driver;
    if (driver == kNoCell) continue;
    const netlist::Cell& cell = g.netlist().cell(driver);
    if (netlist::is_pseudo(cell.kind)) continue;
    ++a.nt;
    const int lvl = g.level(driver);
    if (lvl >= 1 && lvl < static_cast<int>(a.nij.size()))
      ++a.nij[static_cast<std::size_t>(lvl)];
  }
  return a;
}

double gate_dynamic_power_nw(double cap_ff, double vdd, double f_mhz,
                             double activity) noexcept {
  return activity * cap_ff * vdd * vdd * f_mhz;  // fF·V²·MHz = 1e-9 W = nW
}

double block_dynamic_power_nw(const netlist::Netlist& nl, double vdd,
                              double fa_mhz, double activity) {
  double total = 0.0;
  for (const netlist::Net& net : nl.nets())
    total += gate_dynamic_power_nw(net.cap_ff, vdd, fa_mhz, activity);
  return total;
}

std::vector<double> arrival_times_ps(const netlist::Graph& g,
                                     const sim::DelayModel& dm) {
  const netlist::Netlist& nl = g.netlist();
  std::vector<double> cell_arr(nl.num_cells(), 0.0);
  std::vector<double> net_arr(nl.num_nets(), 0.0);

  for (CellId c : g.topo_order()) {
    const netlist::Cell& cell = nl.cell(c);
    double in_arr = 0.0;
    for (NetId i : cell.inputs) {
      const CellId drv = nl.net(i).driver;
      // Feedback edges (driver at a deeper level) do not constrain timing.
      if (drv != kNoCell && g.level(drv) <= g.level(c))
        in_arr = std::max(in_arr, net_arr[i]);
    }
    if (cell.output == kNoNet) {
      cell_arr[c] = in_arr;
      continue;
    }
    double out = in_arr;
    if (!netlist::is_pseudo(cell.kind))
      out += dm.delay_ps(cell.kind, nl.net(cell.output).cap_ff);
    cell_arr[c] = out;
    net_arr[cell.output] = out;
  }
  return net_arr;
}

power::PowerTrace predict_class_profile(const netlist::Graph& g,
                                        const sim::DelayModel& dm,
                                        const power::PowerModelParams& pm,
                                        std::span<const NetId> firing,
                                        double window_ps) {
  const std::vector<double> arr = arrival_times_ps(g, dm);
  std::vector<sim::Transition> pulses;
  pulses.reserve(firing.size());
  for (NetId net : firing) {
    sim::Transition t;
    t.net = net;
    t.rising = true;
    t.cap_ff = g.netlist().net(net).cap_ff;
    t.slew_ps = dm.slew_ps(t.cap_ff);
    t.t_ps = arr[net];
    pulses.push_back(t);
  }
  return power::synthesize(pulses, 0.0, window_ps, pm, nullptr);
}

std::vector<double> predict_bias(const netlist::Graph& g,
                                 const sim::DelayModel& dm,
                                 const power::PowerModelParams& pm,
                                 std::span<const NetId> class0,
                                 std::span<const NetId> class1,
                                 double window_ps) {
  const power::PowerTrace p0 = predict_class_profile(g, dm, pm, class0, window_ps);
  const power::PowerTrace p1 = predict_class_profile(g, dm, pm, class1, window_ps);
  std::vector<double> bias(p0.size());
  for (std::size_t j = 0; j < bias.size(); ++j) bias[j] = p0[j] - p1[j];
  return bias;
}

}  // namespace qdi::core
