#include "qdi/core/leakage.hpp"

#include <algorithm>
#include <cmath>

namespace qdi::core {

ChannelLeakage channel_leakage(const netlist::Netlist& nl,
                               netlist::ChannelId ch,
                               const sim::DelayModel& dm,
                               const power::PowerModelParams& pm) {
  const ChannelCriterion crit = channel_criterion(nl, ch);
  ChannelLeakage lk;
  lk.id = ch;
  lk.name = crit.name;
  lk.dA = crit.dA;

  const double c_lo = pm.total_cap_ff(crit.cap_min_ff);
  const double c_hi = pm.total_cap_ff(crit.cap_max_ff);
  const double dt_lo = dm.slew_ps(crit.cap_min_ff);
  const double dt_hi = dm.slew_ps(crit.cap_max_ff);

  // fC/ps = mA; scale to µA.
  lk.peak_current_ua =
      std::fabs(c_hi / dt_hi - c_lo / dt_lo) * pm.vdd * 1000.0;
  lk.charge_fc = std::fabs(c_hi - c_lo) * pm.vdd;
  const double dt_mean = 0.5 * (dt_lo + dt_hi);
  lk.score_ua = lk.peak_current_ua + 1000.0 * lk.charge_fc / dt_mean;
  return lk;
}

std::vector<ChannelLeakage> rank_leakage(const netlist::Netlist& nl,
                                         const sim::DelayModel& dm,
                                         const power::PowerModelParams& pm) {
  std::vector<ChannelLeakage> out;
  out.reserve(nl.num_channels());
  for (netlist::ChannelId ch = 0; ch < nl.num_channels(); ++ch)
    out.push_back(channel_leakage(nl, ch, dm, pm));
  std::sort(out.begin(), out.end(),
            [](const ChannelLeakage& a, const ChannelLeakage& b) {
              if (a.score_ua != b.score_ua) return a.score_ua > b.score_ua;
              return a.name < b.name;
            });
  return out;
}

util::Table leakage_table(const std::vector<ChannelLeakage>& rows,
                          std::size_t top_k) {
  util::Table t({"channel", "dA", "peak term (uA)", "charge term (fC)",
                 "score (uA)"});
  t.set_precision(3);
  for (std::size_t i = 0; i < rows.size() && i < top_k; ++i) {
    const ChannelLeakage& r = rows[i];
    t.add_row({r.name, t.format_double(r.dA),
               t.format_double(r.peak_current_ua), t.format_double(r.charge_fc),
               t.format_double(r.score_ua)});
  }
  return t;
}

}  // namespace qdi::core
