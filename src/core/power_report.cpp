#include "qdi/core/power_report.hpp"

#include <algorithm>
#include <map>

namespace qdi::core {

std::vector<BlockPower> block_power(const netlist::Netlist& nl,
                                    std::span<const sim::Transition> log,
                                    const power::PowerModelParams& pm,
                                    int depth) {
  auto block_of = [depth](const std::string& hier) -> std::string {
    if (hier.empty()) return "(environment)";
    std::size_t pos = 0;
    for (int d = 0; d < depth; ++d) {
      const std::size_t next = hier.find('/', pos);
      if (next == std::string::npos) return hier;
      pos = next + 1;
    }
    return hier.substr(0, pos == 0 ? std::string::npos : pos - 1);
  };

  std::map<std::string, BlockPower> agg;
  double total = 0.0;
  for (const sim::Transition& t : log) {
    const netlist::CellId driver = nl.net(t.net).driver;
    std::string key = "(environment)";
    if (driver != netlist::kNoCell) {
      const netlist::Cell& cell = nl.cell(driver);
      key = netlist::is_pseudo(cell.kind) ? "(environment)"
                                          : block_of(cell.hier);
    }
    BlockPower& b = agg[key];
    if (b.block.empty()) b.block = key;
    ++b.transitions;
    const double q = power::transition_charge_fc(t, pm);
    b.charge_fc += q;
    total += q;
  }
  std::vector<BlockPower> out;
  out.reserve(agg.size());
  for (auto& [key, b] : agg) {
    (void)key;
    b.share = total > 0.0 ? b.charge_fc / total : 0.0;
    out.push_back(std::move(b));
  }
  std::sort(out.begin(), out.end(), [](const BlockPower& a, const BlockPower& b) {
    return a.charge_fc > b.charge_fc;
  });
  return out;
}

util::Table block_power_table(const std::vector<BlockPower>& rows) {
  util::Table t({"block", "transitions", "charge (fC)", "share %"});
  t.set_precision(1);
  for (const BlockPower& b : rows)
    t.add_row({b.block, std::to_string(b.transitions),
               t.format_double(b.charge_fc),
               t.format_double(100.0 * b.share)});
  return t;
}

}  // namespace qdi::core
