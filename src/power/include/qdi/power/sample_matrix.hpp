// SampleMatrix — the SoA storage of the analysis engine.
//
// The DPA/CPA kernels stream over *columns of traces* (per-sample sums
// across acquisitions), so the natural layout is one contiguous
// row-major n×m block: trace i is row i, sample j is column j, and a
// whole-prefix pass is a linear sweep of memory. This replaces the
// per-trace heap allocations (vector<PowerTrace>) on the analysis path;
// acquisition still produces individual PowerTraces, which append here
// by copy into preallocated rows.
//
// Geometry (t0, dt) is shared by all rows — the acquisition window is
// identical across traces of one campaign, which is what makes sample
// index j a meaningful alignment in the first place.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "qdi/power/trace.hpp"

namespace qdi::power {

namespace internal {

/// Append [src, src+count) to dst, correct even when src points into
/// dst's own storage (e.g. duplicating an existing row through a view):
/// a plain insert would read through iterators invalidated by the
/// growth reallocation. Shared by SampleMatrix and dpa::TraceSet's
/// packed byte arrays.
template <typename T>
void append_possibly_aliasing(std::vector<T>& dst, const T* src,
                              std::size_t count) {
  if (count == 0) return;
  const std::size_t old = dst.size();
  if (src >= dst.data() && src < dst.data() + old) {
    const std::size_t offset = static_cast<std::size_t>(src - dst.data());
    dst.resize(old + count);
    std::copy_n(dst.data() + offset, count, dst.data() + old);
  } else {
    dst.insert(dst.end(), src, src + count);
  }
}

}  // namespace internal

class SampleMatrix {
 public:
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  double t0_ps() const noexcept { return t0_; }
  double dt_ps() const noexcept { return dt_; }

  /// Append one trace as a new row. The first append fixes the column
  /// count and geometry; a later row of a different length throws
  /// std::invalid_argument. Geometry is taken from the first row only —
  /// per-trace t0 jitter is an *analysis obstacle*, not a storage
  /// concern (see dpa::realign_traces).
  void append(TraceView row);
  void append(std::span<const double> samples, double t0_ps, double dt_ps);

  std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<double> mutable_row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }
  TraceView view(std::size_t i) const { return {t0_, dt_, row(i)}; }

  /// The full contiguous block (row-major n×m) for bulk kernels.
  std::span<const double> data() const noexcept { return data_; }

  void reserve_rows(std::size_t n) { data_.reserve(n * cols_); }
  /// Drop rows past n (storage is kept).
  void truncate(std::size_t n);
  /// Remove all rows but keep the capacity and geometry — the zero-
  /// reallocation reuse path of the fused campaign chunks.
  void clear() noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> data_;
};

}  // namespace qdi::power
