// Sampled current trace containers. A PowerTrace is the discrete-time
// power signal S_ij of the paper's DPA formalization (section IV): sample
// j of acquisition i. Units: time in picoseconds, current in microamperes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qdi::power {

class PowerTrace;

/// Non-owning read view of one sampled trace: the geometry of a
/// PowerTrace over borrowed storage. Rows of a SampleMatrix (and hence
/// of a dpa::TraceSet) are handed out as TraceViews; a PowerTrace
/// converts implicitly, so analysis code written against TraceView
/// accepts both.
class TraceView {
 public:
  TraceView() = default;
  TraceView(double t0_ps, double dt_ps, std::span<const double> samples) noexcept
      : t0_(t0_ps), dt_(dt_ps), samples_(samples) {}
  TraceView(const PowerTrace& t) noexcept;  // NOLINT: implicit by design

  double t0_ps() const noexcept { return t0_; }
  double dt_ps() const noexcept { return dt_; }
  std::size_t size() const noexcept { return samples_.size(); }
  double operator[](std::size_t j) const { return samples_[j]; }
  std::span<const double> samples() const noexcept { return samples_; }

  /// Time at the center of sample bin j.
  double time_of(std::size_t j) const noexcept {
    return t0_ + (static_cast<double>(j) + 0.5) * dt_;
  }

  /// Total charge (µA·ps = fC) under the trace.
  double total_charge_fc() const noexcept;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::span<const double> samples_;
};

class PowerTrace {
 public:
  PowerTrace() = default;
  PowerTrace(double t0_ps, double dt_ps, std::size_t num_samples)
      : t0_(t0_ps), dt_(dt_ps), samples_(num_samples, 0.0) {}

  /// Re-initialize in place to an all-zero trace of the given geometry.
  /// The sample buffer's capacity is retained — the acquisition hot loop
  /// reuses one trace per worker with zero steady-state allocation.
  void reset(double t0_ps, double dt_ps, std::size_t num_samples) {
    t0_ = t0_ps;
    dt_ = dt_ps;
    samples_.assign(num_samples, 0.0);
  }

  /// reset() minus the zero fill: the geometry is set and the buffer
  /// sized, but retained samples keep their old values. For producers
  /// that overwrite every sample in a single pass (the batch finish
  /// path) — the caller owns making the contents well-defined.
  void reset_geometry(double t0_ps, double dt_ps, std::size_t num_samples) {
    t0_ = t0_ps;
    dt_ = dt_ps;
    samples_.resize(num_samples);
  }

  double t0_ps() const noexcept { return t0_; }
  double dt_ps() const noexcept { return dt_; }
  std::size_t size() const noexcept { return samples_.size(); }

  double& operator[](std::size_t j) { return samples_[j]; }
  double operator[](std::size_t j) const { return samples_[j]; }

  std::span<const double> samples() const noexcept { return samples_; }
  std::span<double> samples() noexcept { return samples_; }

  /// Time at the center of sample bin j.
  double time_of(std::size_t j) const noexcept {
    return t0_ + (static_cast<double>(j) + 0.5) * dt_;
  }

  /// Total charge (µA·ps = fC) under the trace.
  double total_charge_fc() const noexcept;

  /// In-place addition of another trace with identical geometry.
  PowerTrace& operator+=(const PowerTrace& other);
  PowerTrace& operator-=(const PowerTrace& other);
  PowerTrace& operator*=(double k) noexcept;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> samples_;
};

}  // namespace qdi::power
