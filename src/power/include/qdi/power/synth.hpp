// Behavioural current synthesis — the reproduction's substitute for the
// paper's transistor-level Eldo simulation (section V).
//
// Model (section III of the paper): each committed net transition
// charges or discharges the switched node's total capacitance
// C = Cl + Cpar + Csc through the driving gate, drawing the charge
// Q = C·Vdd from the supply over the charge time Δt(C):
//
//     I(t) = C · dV/dt,   ∫ I dt = C·Vdd,   support width Δt(C).
//
// We synthesize each transition as a triangular pulse of width Δt and
// area Q, accumulate all pulses into sample bins charge-exactly, and
// optionally add the Gaussian measurement noise P_dn of eq. 5. Rising
// edges (charging from Vdd) appear at full weight in the supply current;
// falling edges (discharge to ground) at a reduced weight — only the
// short-circuit component is visible on the supply rail.
//
// The accumulator is streaming-first: StreamingAccumulator is a
// sim::PowerSink that bins transitions as the simulator commits them, so
// acquisition never materializes a transition log. synthesize() is a
// thin wrapper that replays a recorded log through the same accumulator
// — the two paths are bit-identical by construction.
#pragma once

#include <vector>

#include "qdi/power/trace.hpp"
#include "qdi/sim/transition.hpp"
#include "qdi/util/rng.hpp"

namespace qdi::power {

struct PowerModelParams {
  double vdd = 1.2;              ///< supply voltage (HCMOS9 0.13 µm class)
  double sample_period_ps = 10;  ///< acquisition sampling step
  double cpar_ff = 1.5;          ///< parasitic capacitance added per node
  double csc_ff = 0.8;           ///< short-circuit equivalent capacitance
  double rise_weight = 1.0;      ///< supply visibility of charging edges
  double fall_weight = 0.35;     ///< supply visibility of discharging edges
  double noise_sigma_ua = 0.0;   ///< Gaussian current noise per sample, µA

  /// Total switched capacitance for a net of load `cap_ff`:
  /// C = Cl + Cpar + Csc (section III).
  double total_cap_ff(double cap_ff) const noexcept {
    return cap_ff + cpar_ff + csc_ff;
  }
};

/// Streaming charge accumulator: bins each transition's triangular pulse
/// into the sample grid of the current window at commit time. Attach it
/// to a simulation engine as the PowerSink for zero-log acquisition, or
/// feed it a recorded log (what synthesize() does).
class StreamingAccumulator final : public sim::PowerSink {
 public:
  explicit StreamingAccumulator(PowerModelParams params = {})
      : params_(params) {}

  const PowerModelParams& params() const noexcept { return params_; }

  /// Open a fresh window covering [t0_ps, t0_ps + window_ps). Clears any
  /// previous accumulation; the sample buffer's capacity is retained
  /// only until finish() moves it out.
  void begin_window(double t0_ps, double window_ps);

  /// Accumulate one transition's overlap with the open window. Call
  /// order must be commit order for bit-identical results.
  void on_transition(const sim::Transition& t) override;

  /// Scale to µA, add per-sample Gaussian noise if `noise` is provided
  /// and noise_sigma_ua > 0, and move the finished trace out.
  PowerTrace finish(util::Rng* noise = nullptr);

  /// finish() into a caller-owned trace by swapping buffers: `dst`
  /// receives the finished trace and its previous sample buffer becomes
  /// the accumulator's next window — after one warm-up trace per worker
  /// the begin_window/finish_into cycle performs no allocation at all.
  void finish_into(PowerTrace& dst, util::Rng* noise = nullptr);

 private:
  PowerModelParams params_;
  PowerTrace trace_;
  double t_end_ps_ = 0.0;  ///< exact window end (≤ t0 + size·dt)
};

/// Accumulate the given transitions into a trace covering
/// [window_t0_ps, window_t0_ps + window_ps). Transitions outside the
/// window contribute their overlapping part only. If `noise` is provided
/// and noise_sigma_ua > 0, adds i.i.d. Gaussian noise per sample. Thin
/// wrapper over StreamingAccumulator for recorded transition logs.
PowerTrace synthesize(const std::vector<sim::Transition>& transitions,
                      double window_t0_ps, double window_ps,
                      const PowerModelParams& params,
                      util::Rng* noise = nullptr);

/// Charge of one transition as seen on the supply rail (µA·ps = fC):
/// weight(edge) · C_total · Vdd.
double transition_charge_fc(const sim::Transition& t,
                            const PowerModelParams& params) noexcept;

/// Fraction of a triangular pulse spanning [start, start+width) that
/// falls inside [a, b). Exposed for tests (must integrate to 1).
double triangle_overlap(double start, double width, double a, double b) noexcept;

}  // namespace qdi::power
