// BatchAccumulator — the 64-lane form of StreamingAccumulator.
//
// The batch kernel commits one merged (t, net) event for up to 64 lanes
// at once; this sink bins each lane's triangular charge pulse into that
// lane's sample row. Bit-identity with the scalar accumulator is the
// whole point, and it falls out of three facts:
//
//   * per-net charge scale is static: q = weight · C_total(net) · Vdd
//     and scale = q / dt depend only on the net and the edge direction,
//     so both are precomputed per net with the exact operation order of
//     transition_charge_fc() / on_transition();
//   * per-net slew is static (see BatchNetlist), so the pulse shape —
//     and hence the telescoped triangle-CDF boundary values — is shared
//     by every lane of a merged commit. With a shared window start
//     (jitter 0) the per-bin fractions are computed ONCE and re-used by
//     all live lanes; with jitter each lane replays the scalar binning
//     against its own window;
//   * a lane's pulses arrive in that lane's scalar commit order (the
//     canonical (t, net) pop order), so each row's floating-point
//     accumulation order matches the scalar trace exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "qdi/power/synth.hpp"
#include "qdi/sim/batch_simulator.hpp"

namespace qdi::power {

class BatchAccumulator final : public sim::BatchPowerSink {
 public:
  /// `cap_ff_per_net` is CompiledNetlist::cap_ff; the per-net scales are
  /// tabulated here, once per worker.
  BatchAccumulator(PowerModelParams params,
                   std::span<const double> cap_ff_per_net);

  const PowerModelParams& params() const noexcept { return params_; }

  /// Open per-lane windows [t0_ps[l], t0_ps[l] + window_ps) for the
  /// lanes of `mask`. All windows share the sample count
  /// ceil(window_ps / dt); their starts may differ (acquisition jitter).
  void begin_windows(const double* t0_ps, std::uint64_t mask,
                     double window_ps);

  void on_batch_transition(double t_ps, std::uint32_t net,
                           std::uint64_t live, std::uint64_t rising,
                           double slew_ps) override;

  /// Scale lane `lane`'s row to µA into `dst` (geometry reset to that
  /// lane's window) and add per-sample Gaussian noise from `noise` —
  /// the per-lane twin of StreamingAccumulator::finish_into. The row is
  /// left behind (it is cleared by the next begin_windows).
  void finish_into_lane(std::size_t lane, PowerTrace& dst,
                        util::Rng* noise = nullptr) const;

 private:
  PowerModelParams params_;
  std::vector<double> scale_rise_;  ///< per net: q_rise / dt (0 skips)
  std::vector<double> scale_fall_;  ///< per net: q_fall / dt
  std::vector<double> rows_;        ///< lane-major: rows_[lane * n_ + j]
  /// Shared addend table of the aligned path: scale * frac per bin,
  /// built once per edge direction and replayed by every live lane.
  std::vector<double> frac_;
  double t0_[sim::kBatchLanes] = {};
  double t_end_[sim::kBatchLanes] = {};
  // Touched-bin range per lane: activity usually covers a fraction of
  // the window, so begin_windows re-zeroes and finish_into_lane reads
  // only [j_min, j_max) instead of sweeping all n_ bins.
  std::size_t j_min_[sim::kBatchLanes] = {};
  std::size_t j_max_[sim::kBatchLanes] = {};
  std::size_t n_ = 0;
  double window_ps_ = 0.0;
  bool aligned_ = true;  ///< all open windows share t0 (jitter == 0)
};

}  // namespace qdi::power
