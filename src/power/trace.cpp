#include "qdi/power/trace.hpp"

#include <cassert>

namespace qdi::power {

double PowerTrace::total_charge_fc() const noexcept {
  double q = 0.0;
  for (double s : samples_) q += s * dt_;
  return q;
}

PowerTrace& PowerTrace::operator+=(const PowerTrace& other) {
  assert(size() == other.size() && t0_ == other.t0_ && dt_ == other.dt_);
  for (std::size_t j = 0; j < samples_.size(); ++j) samples_[j] += other.samples_[j];
  return *this;
}

PowerTrace& PowerTrace::operator-=(const PowerTrace& other) {
  assert(size() == other.size() && t0_ == other.t0_ && dt_ == other.dt_);
  for (std::size_t j = 0; j < samples_.size(); ++j) samples_[j] -= other.samples_[j];
  return *this;
}

PowerTrace& PowerTrace::operator*=(double k) noexcept {
  for (double& s : samples_) s *= k;
  return *this;
}

}  // namespace qdi::power
