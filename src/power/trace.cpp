#include "qdi/power/trace.hpp"

#include <cassert>

namespace qdi::power {

TraceView::TraceView(const PowerTrace& t) noexcept
    : t0_(t.t0_ps()), dt_(t.dt_ps()), samples_(t.samples()) {}

double TraceView::total_charge_fc() const noexcept {
  double q = 0.0;
  for (double s : samples_) q += s * dt_;
  return q;
}

double PowerTrace::total_charge_fc() const noexcept {
  return TraceView(*this).total_charge_fc();
}

PowerTrace& PowerTrace::operator+=(const PowerTrace& other) {
  assert(size() == other.size() && t0_ == other.t0_ && dt_ == other.dt_);
  for (std::size_t j = 0; j < samples_.size(); ++j) samples_[j] += other.samples_[j];
  return *this;
}

PowerTrace& PowerTrace::operator-=(const PowerTrace& other) {
  assert(size() == other.size() && t0_ == other.t0_ && dt_ == other.dt_);
  for (std::size_t j = 0; j < samples_.size(); ++j) samples_[j] -= other.samples_[j];
  return *this;
}

PowerTrace& PowerTrace::operator*=(double k) noexcept {
  for (double& s : samples_) s *= k;
  return *this;
}

}  // namespace qdi::power
