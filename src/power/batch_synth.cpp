#include "qdi/power/batch_synth.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace qdi::power {

namespace {

// Same CDF as synth.cpp's — the binning below must difference the exact
// same values the scalar accumulator does.
inline double triangle_cdf(double u) noexcept {
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return 1.0;
  if (u <= 0.5) return 2.0 * u * u;
  const double v = 1.0 - u;
  return 1.0 - 2.0 * v * v;
}

}  // namespace

BatchAccumulator::BatchAccumulator(PowerModelParams params,
                                   std::span<const double> cap_ff_per_net)
    : params_(params) {
  const double dt = params_.sample_period_ps;
  assert(dt > 0.0);
  scale_rise_.resize(cap_ff_per_net.size());
  scale_fall_.resize(cap_ff_per_net.size());
  for (std::size_t net = 0; net < cap_ff_per_net.size(); ++net) {
    // Exact operation order of transition_charge_fc + on_transition:
    // q = weight * C_total * vdd, scale = q / dt.
    const double q_rise =
        params_.rise_weight * params_.total_cap_ff(cap_ff_per_net[net]) *
        params_.vdd;
    const double q_fall =
        params_.fall_weight * params_.total_cap_ff(cap_ff_per_net[net]) *
        params_.vdd;
    scale_rise_[net] = q_rise == 0.0 ? 0.0 : q_rise / dt;
    scale_fall_[net] = q_fall == 0.0 ? 0.0 : q_fall / dt;
  }
}

void BatchAccumulator::begin_windows(const double* t0_ps, std::uint64_t mask,
                                     double window_ps) {
  const double dt = params_.sample_period_ps;
  const std::size_t n = static_cast<std::size_t>(std::ceil(window_ps / dt));
  if (n != n_ || rows_.size() != sim::kBatchLanes * n) {
    n_ = n;
    rows_.assign(sim::kBatchLanes * n_, 0.0);
    std::fill(std::begin(j_min_), std::end(j_min_), n_);
    std::fill(std::begin(j_max_), std::end(j_max_), std::size_t{0});
  }
  window_ps_ = window_ps;
  aligned_ = true;
  double shared_t0 = 0.0;
  bool first = true;
  std::uint64_t m = mask;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    t0_[lane] = t0_ps[lane];
    t_end_[lane] = t0_ps[lane] + window_ps;
    // Only the previously touched bins are dirty.
    if (j_min_[lane] < j_max_[lane])
      std::fill(rows_.begin() + static_cast<std::ptrdiff_t>(lane * n_ +
                                                            j_min_[lane]),
                rows_.begin() + static_cast<std::ptrdiff_t>(lane * n_ +
                                                            j_max_[lane]),
                0.0);
    j_min_[lane] = n_;
    j_max_[lane] = 0;
    if (first) {
      shared_t0 = t0_ps[lane];
      first = false;
    } else if (t0_ps[lane] != shared_t0) {
      aligned_ = false;
    }
  }
}

void BatchAccumulator::on_batch_transition(double t_ps, std::uint32_t net,
                                           std::uint64_t live,
                                           std::uint64_t rising,
                                           double slew_ps) {
  const double dt = params_.sample_period_ps;
  const double width = std::max(slew_ps, 1e-3);
  const double start = t_ps - width;
  const double inv_width = 1.0 / width;

  if (aligned_) {
    // Shared window: one set of per-bin fractions serves every live
    // lane. The lead lane's window stands in for all of them.
    const unsigned lead = static_cast<unsigned>(std::countr_zero(live));
    const double t0 = t0_[lead];
    if (start >= t_end_[lead] || start + width <= t0) return;
    std::size_t j_lo = static_cast<std::size_t>(
        std::max(0.0, std::floor((start - t0) / dt)));
    const std::size_t j_hi = std::min(
        n_,
        static_cast<std::size_t>(std::ceil((start + width - t0) / dt)) + 1);
    if (frac_.size() < j_hi - j_lo) frac_.resize(j_hi - j_lo);

    // One addend table per edge direction: addend[k] = scale * frac[k],
    // computed once; every lane of that direction replays the identical
    // adds (same IEEE product and sum operands as the scalar
    // accumulator). Almost every merged commit moves all its lanes the
    // same way (the rails of a four-phase stage rise together and
    // return to zero together), so the common case builds one table,
    // fused with the CDF differencing.
    const std::uint64_t fall = live & ~rising;
    const auto cdf_at = [&](std::size_t j) {
      return triangle_cdf((t0 + static_cast<double>(j) * dt - start) *
                          inv_width);
    };
    // Per-direction addend build over [j_lo, j_hi): writes addend_[k]
    // = scale * (cdf(j+1) - cdf(j)) and returns it for the lane loop.
    const auto build = [&](double scale) {
      double cdf_lo = cdf_at(j_lo);
      double* ad = frac_.data();
      for (std::size_t j = j_lo; j < j_hi; ++j) {
        const double cdf_hi = cdf_at(j + 1);
        ad[j - j_lo] = scale * (cdf_hi - cdf_lo);
        cdf_lo = cdf_hi;
      }
    };
    // Only the boundary bins can carry a zero fraction (the CDF is
    // strictly increasing inside the pulse); trimming them makes the
    // per-lane loop branch-free while adding exactly what the scalar
    // accumulator's `frac > 0` test adds (an interior zero addend would
    // contribute +0.0, which leaves the non-negative rows bit-equal).
    const auto add_lanes = [&](std::uint64_t m, std::size_t lo,
                               std::size_t hi) {
      const double* ad = frac_.data() + (lo - j_lo);
      const std::size_t nb = hi - lo;
      while (m != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        double* row = rows_.data() + lane * n_ + lo;
        for (std::size_t k = 0; k < nb; ++k) row[k] += ad[k];
        j_min_[lane] = std::min(j_min_[lane], lo);
        j_max_[lane] = std::max(j_max_[lane], hi);
      }
    };
    for (const bool up : {true, false}) {
      const std::uint64_t m = up ? (live & rising) : fall;
      if (m == 0) continue;
      const double scale = up ? scale_rise_[net] : scale_fall_[net];
      if (scale == 0.0) continue;  // scalar q == 0 early-out
      build(scale);
      std::size_t lo = j_lo;
      std::size_t hi = j_hi;
      const double* ad = frac_.data();
      while (lo < hi && ad[lo - j_lo] == 0.0) ++lo;
      while (hi > lo && ad[hi - 1 - j_lo] == 0.0) --hi;
      if (lo == hi) continue;
      add_lanes(m, lo, hi);
    }
    return;
  }

  // Jittered windows: replay the scalar binning per lane against that
  // lane's own window.
  std::uint64_t m = live;
  while (m != 0) {
    const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    const double scale = (rising >> lane) & 1u ? scale_rise_[net]
                                               : scale_fall_[net];
    if (scale == 0.0) continue;
    const double t0 = t0_[lane];
    if (start >= t_end_[lane] || start + width <= t0) continue;
    const std::size_t j_lo = static_cast<std::size_t>(
        std::max(0.0, std::floor((start - t0) / dt)));
    const std::size_t j_hi = std::min(
        n_,
        static_cast<std::size_t>(std::ceil((start + width - t0) / dt)) + 1);
    double* row = rows_.data() + lane * n_;
    double cdf_lo = triangle_cdf(
        (t0 + static_cast<double>(j_lo) * dt - start) * inv_width);
    for (std::size_t j = j_lo; j < j_hi; ++j) {
      const double cdf_hi = triangle_cdf(
          (t0 + static_cast<double>(j + 1) * dt - start) * inv_width);
      const double frac = cdf_hi - cdf_lo;
      cdf_lo = cdf_hi;
      if (frac > 0.0) row[j] += scale * frac;
    }
    j_min_[lane] = std::min(j_min_[lane], j_lo);
    j_max_[lane] = std::max(j_max_[lane], j_hi);
  }
}

void BatchAccumulator::finish_into_lane(std::size_t lane, PowerTrace& dst,
                                        util::Rng* noise) const {
  // Single pass over the n_ samples: zeros outside the touched range,
  // scaled row values inside (reset() would memset the whole buffer
  // first and then overwrite the touched part again).
  dst.reset_geometry(t0_[lane], params_.sample_period_ps, n_);
  const double* row = rows_.data() + lane * n_;
  const std::size_t lo = std::min(j_min_[lane], n_);
  const std::size_t hi = std::min(j_max_[lane], n_);
  double* out = dst.samples().data();
  std::fill(out, out + lo, 0.0);
  for (std::size_t j = lo; j < hi; ++j) out[j] = row[j] * 1000.0;
  std::fill(out + std::max(lo, hi), out + n_, 0.0);
  if (noise != nullptr && params_.noise_sigma_ua > 0.0) {
    for (std::size_t j = 0; j < n_; ++j)
      dst[j] += noise->gaussian(0.0, params_.noise_sigma_ua);
  }
}

}  // namespace qdi::power
