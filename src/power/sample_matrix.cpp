#include "qdi/power/sample_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace qdi::power {

void SampleMatrix::append(TraceView row) {
  append(row.samples(), row.t0_ps(), row.dt_ps());
}

void SampleMatrix::append(std::span<const double> samples, double t0_ps,
                          double dt_ps) {
  if (rows_ == 0) {
    cols_ = samples.size();
    t0_ = t0_ps;
    dt_ = dt_ps;
  } else if (samples.size() != cols_) {
    throw std::invalid_argument(
        "SampleMatrix::append: row length differs from the first row");
  }
  internal::append_possibly_aliasing(data_, samples.data(), samples.size());
  ++rows_;
}

void SampleMatrix::truncate(std::size_t n) {
  if (n >= rows_) return;
  rows_ = n;
  data_.resize(n * cols_);
}

void SampleMatrix::clear() noexcept {
  rows_ = 0;
  data_.clear();
}

}  // namespace qdi::power
