#include "qdi/power/synth.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace qdi::power {

double triangle_overlap(double start, double width, double a, double b) noexcept {
  if (width <= 0.0) {
    // Degenerate impulse: all charge at `start`.
    return (start >= a && start < b) ? 1.0 : 0.0;
  }
  // Normalized triangle on [0,1] with apex at 1/2, pdf f(u) = 4u on
  // [0,1/2], 4(1-u) on [1/2,1]. CDF:
  auto cdf = [](double u) noexcept {
    if (u <= 0.0) return 0.0;
    if (u >= 1.0) return 1.0;
    if (u <= 0.5) return 2.0 * u * u;
    const double v = 1.0 - u;
    return 1.0 - 2.0 * v * v;
  };
  const double ua = (a - start) / width;
  const double ub = (b - start) / width;
  return cdf(ub) - cdf(ua);
}

double transition_charge_fc(const sim::Transition& t,
                            const PowerModelParams& params) noexcept {
  const double weight = t.rising ? params.rise_weight : params.fall_weight;
  return weight * params.total_cap_ff(t.cap_ff) * params.vdd;
}

void StreamingAccumulator::begin_window(double t0_ps, double window_ps) {
  const double dt = params_.sample_period_ps;
  assert(dt > 0.0);
  const std::size_t n = static_cast<std::size_t>(std::ceil(window_ps / dt));
  trace_.reset(t0_ps, dt, n);  // capacity-retaining zero-fill
  t_end_ps_ = t0_ps + window_ps;
}

namespace {

/// CDF of the normalized triangular pulse on [0,1] (apex 1/2) — the
/// kernel triangle_overlap() differences; hoisted here so the streaming
/// accumulator can telescope it across adjacent bins.
inline double triangle_cdf(double u) noexcept {
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return 1.0;
  if (u <= 0.5) return 2.0 * u * u;
  const double v = 1.0 - u;
  return 1.0 - 2.0 * v * v;
}

}  // namespace

void StreamingAccumulator::on_transition(const sim::Transition& t) {
  const double q = transition_charge_fc(t, params_);
  if (q == 0.0) return;
  const double dt = trace_.dt_ps();
  const double window_t0_ps = trace_.t0_ps();
  const std::size_t n = trace_.size();
  // Charge flows while the output node swings: pulse spans
  // [t_commit - Δt, t_commit] — the commit time is the end of the swing.
  const double width = std::max(t.slew_ps, 1e-3);
  const double start = t.t_ps - width;
  // Clip to the window quickly.
  if (start >= t_end_ps_ || start + width <= window_t0_ps) return;
  const std::size_t j_lo = static_cast<std::size_t>(std::max(
      0.0, std::floor((start - window_t0_ps) / dt)));
  const std::size_t j_hi = std::min(
      n, static_cast<std::size_t>(
             std::ceil((start + width - window_t0_ps) / dt)) + 1);
  // Adjacent bins share a boundary: evaluate the pulse CDF once per
  // boundary and difference it, instead of twice per bin through
  // triangle_overlap. The telescoped sum is charge-exact by construction.
  const double inv_width = 1.0 / width;
  const double scale = q / dt;  // fC/ps·1000 = µA... see below
  double cdf_lo = triangle_cdf(
      (window_t0_ps + static_cast<double>(j_lo) * dt - start) * inv_width);
  for (std::size_t j = j_lo; j < j_hi; ++j) {
    const double cdf_hi = triangle_cdf(
        (window_t0_ps + static_cast<double>(j + 1) * dt - start) * inv_width);
    const double frac = cdf_hi - cdf_lo;
    cdf_lo = cdf_hi;
    if (frac > 0.0) trace_[j] += scale * frac;
  }
}

PowerTrace StreamingAccumulator::finish(util::Rng* noise) {
  PowerTrace out;
  finish_into(out, noise);
  return out;
}

void StreamingAccumulator::finish_into(PowerTrace& dst, util::Rng* noise) {
  // Unit bookkeeping: q is in fC, bins in ps, so q/dt is fC/ps = mA.
  // Scale to µA for friendlier magnitudes.
  trace_ *= 1000.0;
  if (noise != nullptr && params_.noise_sigma_ua > 0.0) {
    for (std::size_t j = 0; j < trace_.size(); ++j)
      trace_[j] += noise->gaussian(0.0, params_.noise_sigma_ua);
  }
  // Buffer ping-pong: dst's old storage becomes the next window.
  std::swap(dst, trace_);
}

PowerTrace synthesize(const std::vector<sim::Transition>& transitions,
                      double window_t0_ps, double window_ps,
                      const PowerModelParams& params, util::Rng* noise) {
  StreamingAccumulator acc(params);
  acc.begin_window(window_t0_ps, window_ps);
  for (const sim::Transition& t : transitions) acc.on_transition(t);
  return acc.finish(noise);
}

}  // namespace qdi::power
